package parsearch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parsearch/internal/disk"
	"parsearch/internal/knn"
)

// BatchStats reports the cost of processing a whole query batch — the
// throughput view the paper names as future work ("declustering
// techniques which optimize the throughput instead of the search time
// for a single query"). Under concurrent load the *total* work per disk
// matters, not the per-query bottleneck.
type BatchStats struct {
	// Queries is the batch size.
	Queries int
	// Workers is the size of the worker pool that processed the batch
	// (Options.BatchWorkers, capped at the batch size; GOMAXPROCS when
	// unset).
	Workers int
	// PagesPerDisk is the total number of pages each disk read for the
	// whole batch.
	PagesPerDisk []int
	// TotalPages is the batch's total page count.
	TotalPages int
	// MakespanSeconds is the simulated time until the last disk
	// finished its share of the batch.
	MakespanSeconds float64
	// QueriesPerSecond is Queries / MakespanSeconds.
	QueriesPerSecond float64
	// Utilization is the mean disk busy-fraction over the makespan
	// (1.0 = perfectly balanced).
	Utilization float64
	// Degraded reports that at least one query of the batch was
	// degraded — unreachable data could have affected its answer (see
	// QueryStats.Degraded).
	Degraded bool
	// Unreachable is the total number of pages the batch needed whose
	// primary and replica disks were both failed.
	Unreachable int
	// Rerouted is the total number of pages served by replica disks
	// because the primary was failed.
	Rerouted int
	// Retries is the number of read retries the fault model's transient
	// errors caused across the whole batch.
	Retries int
	// SearchPages is the total number of index pages the batch's
	// per-disk searches traversed; PagesSavedByBound the pages the
	// shared bound pruned (see QueryStats). Within a batch item the
	// shards are searched sequentially, so both totals are
	// deterministic for a given index state.
	SearchPages       int
	PagesSavedByBound int
	// PagesSavedByRemoteBound totals the per-query savings attributable
	// to an externally seeded bound (see QueryStats). 0 without
	// Approx.Bound.
	PagesSavedByRemoteBound int
	// BoundTightenings counts how often the batch's searches lowered
	// their per-query shared bounds.
	BoundTightenings int
	// DistCompsSaved is the total number of exact distance computations
	// the SQ8 pre-filter skipped across the batch (see QueryStats).
	DistCompsSaved int
	// PagesSkippedApprox and ProbePages total the approximate tier's
	// per-query counters across the batch (see QueryStats). 0 on exact
	// batches.
	PagesSkippedApprox int
	ProbePages         int
	// PerQuery holds each query's own cost statistics: PerQuery[i]
	// describes queries[i]. Page counts are exact regardless of how the
	// scheduler interleaved the workers; times are derived from the
	// service-time model as if the query ran alone (the disk array's
	// lifetime counters are charged once, for the aggregated batch).
	PerQuery []QueryStats
}

// batchWorkers returns the worker-pool size for a batch of n queries.
func (ix *Index) batchWorkers(n int) int {
	w := ix.opts.BatchWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// fillQueryCost completes a per-query QueryStats from its page refs:
// totals, bottleneck, and model-derived times (the same seek/transfer
// accounting the disk array applies).
func fillQueryCost(qs *QueryStats, refs []disk.PageRef, params disk.Params, disks int) {
	reads := make([]int, disks)
	for _, r := range refs {
		reads[r.Disk]++
	}
	var par, seq time.Duration
	for d := 0; d < disks; d++ {
		qs.TotalPages += qs.PagesPerDisk[d]
		if qs.PagesPerDisk[d] > qs.MaxPages {
			qs.MaxPages = qs.PagesPerDisk[d]
		}
		t := params.SimulateCost(reads[d], qs.PagesPerDisk[d])
		seq += t
		if t > par {
			par = t
		}
	}
	qs.ParallelTime = par.Seconds()
	qs.SequentialTime = seq.Seconds()
	if par > 0 {
		qs.Speedup = float64(seq) / float64(par)
	}
}

// ServiceDemands computes, for every query, the service time in seconds
// each disk would spend answering a k-NN query — the input for capacity
// planning and queueing simulation (see internal/sim and the
// ext-queueing experiment). demands[i][d] is query i's demand on disk d.
// Capacity planning models the healthy system: failure flags and
// replica rerouting are ignored.
func (ix *Index) ServiceDemands(queries [][]float64, k int) ([][]float64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	if k < 1 {
		return nil, fmt.Errorf("parsearch: k = %d", k)
	}
	if ix.liveCount() == 0 {
		return nil, ErrEmpty
	}
	m := ix.metric()
	routes := healthyPlan(st)
	demands := make([][]float64, len(queries))
	for i, q := range queries {
		if len(q) != ix.opts.Dim {
			return nil, fmt.Errorf("parsearch: query %d has dimension %d, want %d", i, len(q), ix.opts.Dim)
		}
		var merged []knn.Result
		for _, sh := range st.shards {
			sh.mu.RLock()
			res, _ := knn.HSMetric(sh.tree, q, k, m)
			sh.mu.RUnlock()
			merged = append(merged, res...)
		}
		sortResults(merged)
		if len(merged) > k {
			merged = merged[:k]
		}
		if len(merged) == 0 {
			return nil, ErrEmpty
		}
		rk := merged[len(merged)-1].Dist

		qs := QueryStats{PagesPerDisk: make([]int, len(st.shards))}
		reads := make([]int, len(st.shards))
		refs := ix.sphereRefs(st, routes, q, rk, &qs)
		for _, ref := range refs {
			reads[ref.Disk]++
		}
		row := make([]float64, len(st.shards))
		for d := range row {
			row[d] = ix.params.SimulateCost(reads[d], qs.PagesPerDisk[d]).Seconds()
		}
		demands[i] = row
	}
	return demands, nil
}

// BatchKNN answers many k-NN queries as one batch: a worker pool of
// Options.BatchWorkers goroutines (default GOMAXPROCS) processes the
// queries, each query still fanning out over all disks, and the I/O
// phase charges every disk the union of its page reads across the batch.
// The i-th result corresponds to queries[i]; BatchStats.PerQuery carries
// each query's own cost accounting. Results and statistics are
// deterministic for a given index state regardless of the worker count
// or scheduling order.
func (ix *Index) BatchKNN(queries [][]float64, k int) ([][]Neighbor, BatchStats, error) {
	return ix.BatchKNNContext(context.Background(), queries, k)
}

// BatchKNNApprox is BatchKNN with per-query approximate-search knobs,
// applied to every query of the batch (see KNNApprox).
func (ix *Index) BatchKNNApprox(queries [][]float64, k int, a Approx) ([][]Neighbor, BatchStats, error) {
	return ix.BatchKNNApproxContext(context.Background(), queries, k, a)
}

// BatchKNNApproxContext is BatchKNNApprox with a context (see
// BatchKNNContext).
func (ix *Index) BatchKNNApproxContext(ctx context.Context, queries [][]float64, k int, a Approx) ([][]Neighbor, BatchStats, error) {
	if err := a.validate(); err != nil {
		return nil, BatchStats{}, err
	}
	return ix.batchKNNContext(ctx, queries, k, a, ShardSpec{})
}

// BatchKNNShardContext is BatchKNNApproxContext restricted to a subset
// of the declustered disks (see ShardSpec and KNNShardContext), applied
// to every query of the batch.
func (ix *Index) BatchKNNShardContext(ctx context.Context, queries [][]float64, k int, a Approx, shards ShardSpec) ([][]Neighbor, BatchStats, error) {
	if err := a.validate(); err != nil {
		return nil, BatchStats{}, err
	}
	if err := shards.validate(ix.opts.Disks); err != nil {
		return nil, BatchStats{}, err
	}
	return ix.batchKNNContext(ctx, queries, k, a, shards)
}

// BatchKNNContext is BatchKNN with a context, which may carry a
// per-request tracer (see WithTracer) and a deadline. Batch traces
// share one query sequence number; per-item events carry the batch
// index in Item. Cancellation is honored between per-disk searches and
// between batch items: a cancelled context makes the batch return
// ctx.Err() without starting further shard searches or the simulated
// I/O phase.
func (ix *Index) BatchKNNContext(ctx context.Context, queries [][]float64, k int) ([][]Neighbor, BatchStats, error) {
	return ix.batchKNNContext(ctx, queries, k, ix.ApproxDefaults(), ShardSpec{})
}

// batchKNNContext runs one batch with the resolved approximate-search
// knobs and shard restriction (both already validated).
func (ix *Index) batchKNNContext(ctx context.Context, queries [][]float64, k int, a Approx, shards ShardSpec) (_ [][]Neighbor, stats BatchStats, err error) {
	start := time.Now()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st

	sp := ix.newSpan(ctx, "batch")
	defer func() {
		if err != nil {
			ix.reg.QueryErrors.Inc()
			sp.errEvent(err)
		}
	}()

	if k < 1 {
		return nil, stats, fmt.Errorf("parsearch: k = %d", k)
	}
	for i, q := range queries {
		if len(q) != ix.opts.Dim {
			return nil, stats, fmt.Errorf("parsearch: query %d has dimension %d, want %d", i, len(q), ix.opts.Dim)
		}
	}
	if ix.liveCount() == 0 {
		return nil, stats, ErrEmpty
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	stats.Queries = len(queries)
	stats.PagesPerDisk = make([]int, len(st.shards))
	if len(queries) == 0 {
		return nil, stats, nil
	}

	// Plan the failure routing once for the whole batch: every query of
	// the batch sees the same consistent failure snapshot (see KNN).
	routes, degraded := ix.plan(st, shards.mask(ix.opts.Disks))
	sp.planEvents(routes, degraded)

	// Result phase: the worker pool answers the queries and computes
	// each query's page refs and per-query statistics. Everything is
	// stored per query index, so the final aggregation is a
	// deterministic fold no matter how the workers interleaved.
	workers := ix.batchWorkers(len(queries))
	stats.Workers = workers
	results := make([][]Neighbor, len(queries))
	perQuery := make([]QueryStats, len(queries))
	refsPerQuery := make([][]disk.PageRef, len(queries))
	errs := make([]error, len(queries))
	m := ix.metric()
	var nodeVisits atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// A cancelled batch stops picking up items; the items
				// already attempted surface the cancellation below.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				q := queries[i]
				// One shared bound per batch item, seeded on the home
				// shard and consulted across the remaining shards. A
				// worker searches its item's shards sequentially, so the
				// bound's trajectory — and with it the pages saved — is
				// deterministic, unlike the parallel fan-out of KNN.
				sr := newShardSearch(ctx, ix, &sp, st, q, k, m)
				sr.setApprox(a, ix.opts.LSH)
				sr.seedBound(a)
				sr.item, sr.emit = i, false
				seed := -1
				if sr.bound != nil {
					if d := ix.homeDisk(st, q); routes[d].sh != nil {
						seed = d
						sr.search(routes[d], d)
					}
				}
				for d := range routes {
					if routes[d].sh == nil || d == seed {
						continue
					}
					sr.search(routes[d], d)
				}
				var merged []knn.Result
				for _, l := range sr.locals {
					merged = append(merged, l...)
				}
				sortResults(merged)
				if len(merged) > k {
					merged = merged[:k]
				}
				if len(merged) == 0 {
					if degraded {
						// Every live copy of the data is unreachable.
						errs[i] = ErrUnavailable
					} else {
						// Concurrent deletions emptied the index.
						errs[i] = ErrEmpty
					}
					continue
				}
				rk := merged[len(merged)-1].Dist
				out := make([]Neighbor, len(merged))
				for j, r := range merged {
					out[j] = Neighbor{ID: r.Entry.ID, Point: r.Entry.Point, Dist: r.Dist}
				}
				results[i] = out

				qs := QueryStats{PagesPerDisk: make([]int, len(st.shards))}
				nodeVisits.Add(sr.record(&qs))
				if sr.approx {
					sp.emit(TraceEvent{Stage: StageApprox, Disk: -1, Item: i, K: k,
						Epsilon: sr.eps, Pages: qs.PagesSkippedApprox})
				}
				refs := ix.sphereRefs(st, routes, q, rk, &qs)
				// Per-query degraded refinement as in KNN: only when the
				// dead data could have changed this query's answer.
				qs.Degraded = qs.Unreachable > 0 || (degraded && len(merged) < k)
				fillQueryCost(&qs, refs, ix.params, len(st.shards))
				perQuery[i] = qs
				refsPerQuery[i] = refs
				sp.emit(TraceEvent{Stage: StageSearch, Disk: -1, Item: i, K: k,
					Results: len(out), Pages: qs.TotalPages, Radius: rk,
					Degraded: qs.Degraded})
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	// Cancellation during the fan-out takes precedence over per-item
	// errors: partially searched items must not look like ErrEmpty.
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	stats.PerQuery = perQuery

	// I/O phase: aggregate the page reads of the whole batch in query
	// order and run them through the disk array once.
	var refs []disk.PageRef
	for i := range refsPerQuery {
		refs = append(refs, refsPerQuery[i]...)
		for d, pages := range perQuery[i].PagesPerDisk {
			stats.PagesPerDisk[d] += pages
		}
		stats.Unreachable += perQuery[i].Unreachable
		stats.Rerouted += perQuery[i].Rerouted
		stats.SearchPages += perQuery[i].SearchPages
		stats.PagesSavedByBound += perQuery[i].PagesSavedByBound
		stats.PagesSavedByRemoteBound += perQuery[i].PagesSavedByRemoteBound
		stats.BoundTightenings += perQuery[i].BoundTightenings
		stats.DistCompsSaved += perQuery[i].DistCompsSaved
		stats.PagesSkippedApprox += perQuery[i].PagesSkippedApprox
		stats.ProbePages += perQuery[i].ProbePages
		stats.Degraded = stats.Degraded || perQuery[i].Degraded
	}
	batch, err := ix.array.ReadBatch(refs)
	if err != nil {
		return nil, stats, fmt.Errorf("parsearch: %w", err)
	}
	stats.TotalPages = batch.Total
	stats.Retries = batch.Retries
	stats.MakespanSeconds = batch.ParallelTime.Seconds()
	if stats.MakespanSeconds > 0 {
		stats.QueriesPerSecond = float64(stats.Queries) / stats.MakespanSeconds
		stats.Utilization = batch.SequentialTime.Seconds() /
			(stats.MakespanSeconds * float64(len(st.shards)))
	}
	sp.ioEvents(batch)
	ix.recordBatch(&stats, batch, nodeVisits.Load(), start)
	sp.emit(TraceEvent{Stage: StageDone, Disk: -1, Item: -1, K: k,
		Results: stats.Queries, Pages: stats.TotalPages, Degraded: stats.Degraded})
	return results, stats, nil
}

// recordBatch folds a finished batch into the metrics registry: the
// batch counts as one QueriesBatch call and len(PerQuery) BatchQueries;
// pages and fault counters are charged from the aggregated batch so the
// registry totals match the sum of the per-query stats.
func (ix *Index) recordBatch(bs *BatchStats, batch disk.BatchResult, nodeVisits int64, start time.Time) {
	ix.reg.QueriesBatch.Inc()
	ix.reg.BatchQueries.Add(int64(bs.Queries))
	ix.reg.NodeVisits.Add(nodeVisits)
	ix.reg.PagesRead.Add(int64(bs.TotalPages))
	ix.reg.Retries.Add(int64(bs.Retries))
	ix.reg.Rerouted.Add(int64(bs.Rerouted))
	ix.reg.Unreachable.Add(int64(bs.Unreachable))
	ix.reg.SearchPages.Add(int64(bs.SearchPages))
	ix.reg.PagesSavedByBound.Add(int64(bs.PagesSavedByBound))
	ix.reg.PagesSavedByRemoteBound.Add(int64(bs.PagesSavedByRemoteBound))
	ix.reg.BoundTightenings.Add(int64(bs.BoundTightenings))
	ix.reg.DistCompsSaved.Add(int64(bs.DistCompsSaved))
	// One wall-clock observation for the whole call: the histogram
	// tracks API-call latencies, and the batch is one call.
	ix.reg.QueryWallNs.Observe(time.Since(start).Nanoseconds())
	for d, pages := range bs.PagesPerDisk {
		ix.reg.PagesPerDisk.Add(d, int64(pages))
	}
	for d, t := range batch.Times {
		ix.reg.ServiceTimePerDisk.Add(d, t.Nanoseconds())
	}
	for i := range bs.PerQuery {
		qs := &bs.PerQuery[i]
		ix.reg.CellsVisited.Add(int64(qs.Cells))
		if qs.Degraded {
			ix.reg.DegradedQueries.Inc()
		}
		ix.recordApprox(qs)
		ix.reg.QueryPages.Observe(int64(qs.TotalPages))
		ix.reg.QueryTimeNs.Observe(int64(qs.ParallelTime * 1e9))
	}
}
