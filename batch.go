package parsearch

import (
	"fmt"
	"runtime"
	"sync"

	"parsearch/internal/disk"
	"parsearch/internal/knn"
)

// BatchStats reports the cost of processing a whole query batch — the
// throughput view the paper names as future work ("declustering
// techniques which optimize the throughput instead of the search time
// for a single query"). Under concurrent load the *total* work per disk
// matters, not the per-query bottleneck.
type BatchStats struct {
	// Queries is the batch size.
	Queries int
	// PagesPerDisk is the total number of pages each disk read for the
	// whole batch.
	PagesPerDisk []int
	// TotalPages is the batch's total page count.
	TotalPages int
	// MakespanSeconds is the simulated time until the last disk
	// finished its share of the batch.
	MakespanSeconds float64
	// QueriesPerSecond is Queries / MakespanSeconds.
	QueriesPerSecond float64
	// Utilization is the mean disk busy-fraction over the makespan
	// (1.0 = perfectly balanced).
	Utilization float64
}

// ServiceDemands computes, for every query, the service time in seconds
// each disk would spend answering a k-NN query — the input for capacity
// planning and queueing simulation (see internal/sim and the
// ext-queueing experiment). demands[i][d] is query i's demand on disk d.
func (ix *Index) ServiceDemands(queries [][]float64, k int) ([][]float64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k < 1 {
		return nil, fmt.Errorf("parsearch: k = %d", k)
	}
	if ix.live == 0 {
		return nil, ErrEmpty
	}
	m := ix.metric()
	demands := make([][]float64, len(queries))
	for i, q := range queries {
		if len(q) != ix.opts.Dim {
			return nil, fmt.Errorf("parsearch: query %d has dimension %d, want %d", i, len(q), ix.opts.Dim)
		}
		var merged []knn.Result
		for _, t := range ix.trees {
			res, _ := knn.HSMetric(t, q, k, m)
			merged = append(merged, res...)
		}
		sortResults(merged)
		if len(merged) > k {
			merged = merged[:k]
		}
		rk := merged[len(merged)-1].Dist

		perDisk := make([]int, len(ix.trees))
		reads := make([]int, len(ix.trees))
		refs, _ := ix.sphereRefs(q, rk, perDisk)
		for _, ref := range refs {
			reads[ref.Disk]++
		}
		row := make([]float64, len(ix.trees))
		for d := range row {
			row[d] = ix.params.SimulateCost(reads[d], perDisk[d]).Seconds()
		}
		demands[i] = row
	}
	return demands, nil
}

// BatchKNN answers many k-NN queries as one batch: the result phase runs
// all disks and queries concurrently, and the I/O phase charges every
// disk the union of its page reads across the batch. The i-th result
// corresponds to queries[i].
func (ix *Index) BatchKNN(queries [][]float64, k int) ([][]Neighbor, BatchStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var stats BatchStats
	if k < 1 {
		return nil, stats, fmt.Errorf("parsearch: k = %d", k)
	}
	for i, q := range queries {
		if len(q) != ix.opts.Dim {
			return nil, stats, fmt.Errorf("parsearch: query %d has dimension %d, want %d", i, len(q), ix.opts.Dim)
		}
	}
	if ix.live == 0 {
		return nil, stats, ErrEmpty
	}
	stats.Queries = len(queries)
	stats.PagesPerDisk = make([]int, len(ix.trees))
	if len(queries) == 0 {
		return nil, stats, nil
	}

	// Result phase: a worker pool answers the queries; each query still
	// fans out over all disks.
	results := make([][]Neighbor, len(queries))
	radii := make([]float64, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	m := ix.metric()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				var merged []knn.Result
				for _, t := range ix.trees {
					res, _ := knn.HSMetric(t, q, k, m)
					merged = append(merged, res...)
				}
				sortResults(merged)
				if len(merged) > k {
					merged = merged[:k]
				}
				radii[i] = merged[len(merged)-1].Dist
				out := make([]Neighbor, len(merged))
				for j, r := range merged {
					out[j] = Neighbor{ID: r.Entry.ID, Point: r.Entry.Point, Dist: r.Dist}
				}
				results[i] = out
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	// I/O phase: aggregate the page reads of the whole batch and run
	// them through the disk array once.
	var refs []disk.PageRef
	for i, q := range queries {
		r, _ := ix.sphereRefs(q, radii[i], stats.PagesPerDisk)
		refs = append(refs, r...)
	}
	batch, err := ix.array.ReadBatch(refs)
	if err != nil {
		return nil, stats, fmt.Errorf("parsearch: %w", err)
	}
	stats.TotalPages = batch.Total
	stats.MakespanSeconds = batch.ParallelTime.Seconds()
	if stats.MakespanSeconds > 0 {
		stats.QueriesPerSecond = float64(stats.Queries) / stats.MakespanSeconds
		stats.Utilization = batch.SequentialTime.Seconds() /
			(stats.MakespanSeconds * float64(len(ix.trees)))
	}
	return results, stats, nil
}
