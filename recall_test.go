package parsearch

// The statistical recall battery for the approximate tier: seeded,
// deterministic inputs measured against a brute-force linear scan.
// Approximation changes *which* pages a query visits (the ε check and
// the LSH filter both compose with the timing-dependent shared bound),
// so individual page counts are not pinned; what the battery pins is
// the contract:
//
//   - ε=0 with no LSH routes through the exact path and is byte-for-
//     byte identical to KNN, stats included.
//   - Every neighbor an ε-query returns is within (1+ε) of the true
//     kth distance — the termination guarantee, which holds regardless
//     of scheduling.
//   - Mean recall stays above the documented floor for each knob.
//   - PagesSkippedApprox is nonzero where the tier claims a win, so
//     the knobs are proven non-vacuous, not just non-wrong.

import (
	"fmt"
	"reflect"
	"testing"

	"parsearch/internal/data"
)

// recallOf measures |returned ∩ true top-k| / k against the linear
// scan. Ties are impossible on uniform random coordinates, so ID-set
// intersection is exact.
func recallOf(res []Neighbor, truth []scanHit) float64 {
	if len(truth) == 0 {
		return 1
	}
	want := make(map[int]bool, len(truth))
	for _, h := range truth {
		want[h.id] = true
	}
	hits := 0
	for _, nb := range res {
		if want[nb.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// TestApproxRecallBattery sweeps ε ∈ {0, 0.1, 0.5} across declustering
// strategies × replication × the packed/quantized storage engine.
// Small pages make the per-shard trees deep enough that early
// termination has real pages to skip at this workload size.
func TestApproxRecallBattery(t *testing.T) {
	const dim, disks, n, k, nq = 6, 5, 2500, 10, 40
	pts := uniformPoints(n, dim, 101)
	truth := make(map[int][]float64, n)
	for id, p := range pts {
		truth[id] = p
	}
	queries := data.Uniform(nq, dim, 102)
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}

	epsCases := []struct {
		eps   float64
		floor float64 // minimum mean recall over the query set
	}{
		{0, 1.0},
		{0.1, 0.95},
		{0.5, 0.80},
	}
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"base", func(o *Options) {}},
		{"packed-quantize", func(o *Options) { o.Packed = true; o.Quantize = true }},
	}

	// Aggregated across every configuration: each ε knob must skip
	// pages somewhere in the battery, or the knob is vacuous.
	skippedByEps := make(map[float64]int)

	for _, kind := range []Kind{NearOptimal, Hilbert, RoundRobin} {
		for _, rv := range replicationVariants {
			for _, v := range variants {
				opts := Options{Dim: dim, Disks: disks, Kind: kind,
					Replication: rv.value, PageSize: 256}
				v.mod(&opts)
				ix := buildFrom(t, opts, pts)

				for _, ec := range epsCases {
					t.Run(fmt.Sprintf("%s/%s/%s/eps=%v", kind, rv.name, v.name, ec.eps), func(t *testing.T) {
						var recallSum float64
						for qi, q := range queries {
							res, stats, err := ix.KNNApprox(q, k, Approx{Epsilon: ec.eps})
							if err != nil {
								t.Fatal(err)
							}
							if len(res) != k {
								t.Fatalf("query %d: %d neighbors, want %d — approximation must not shorten the result set",
									qi, len(res), k)
							}
							want := linearScanKNN(truth, q, k, m)

							if ec.eps == 0 {
								// ε=0 takes the exact path: byte-identical
								// results and stats against plain KNN.
								exact, exactStats, err := ix.KNN(q, k)
								if err != nil {
									t.Fatal(err)
								}
								if !reflect.DeepEqual(res, exact) {
									t.Fatalf("query %d: ε=0 results differ from exact KNN", qi)
								}
								if stats.PagesSkippedApprox != 0 || stats.EffectiveEpsilon != 0 ||
									stats.ProbePages != 0 {
									t.Fatalf("query %d: ε=0 reported approx activity: %+v", qi, stats)
								}
								if exactStats.PagesSkippedApprox != 0 || exactStats.EffectiveEpsilon != 0 {
									t.Fatalf("query %d: exact KNN reported approx activity: %+v", qi, exactStats)
								}
							} else {
								if stats.EffectiveEpsilon != ec.eps {
									t.Fatalf("query %d: EffectiveEpsilon %v, want %v",
										qi, stats.EffectiveEpsilon, ec.eps)
								}
								// The termination guarantee: every returned
								// distance is within (1+ε) of the true kth.
								kth := want[len(want)-1].dist
								for j, nb := range res {
									if nb.Dist > (1+ec.eps)*kth+1e-9 {
										t.Fatalf("query %d neighbor %d: dist %v exceeds (1+ε)·kth = %v",
											qi, j, nb.Dist, (1+ec.eps)*kth)
									}
								}
							}
							skippedByEps[ec.eps] += stats.PagesSkippedApprox
							recallSum += recallOf(res, want)
						}
						mean := recallSum / float64(len(queries))
						if mean < ec.floor {
							t.Errorf("mean recall %.3f below floor %.2f", mean, ec.floor)
						}
					})
				}
			}
		}
	}
	if skippedByEps[0] != 0 {
		t.Errorf("ε=0 skipped %d pages across the battery, want 0", skippedByEps[0])
	}
	for _, eps := range []float64{0.1, 0.5} {
		if skippedByEps[eps] <= 0 {
			t.Errorf("ε=%v skipped no pages anywhere in the battery — the knob is vacuous", eps)
		}
	}
}

// TestLSHRecallBattery measures the multi-probe pre-filter:
// recall_target=1 must be byte-identical to exact search even with the
// filter built, and the capped targets must hold their recall floor
// while actually rejecting leaves.
func TestLSHRecallBattery(t *testing.T) {
	const dim, disks, n, k, nq = 6, 4, 2500, 10, 40
	pts := uniformPoints(n, dim, 103)
	truth := make(map[int][]float64, n)
	for id, p := range pts {
		truth[id] = p
	}
	queries := data.Uniform(nq, dim, 104)
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}

	// wantSkip asserts actual leaf rejections. The 0.9 target often
	// rejects nothing at this scale — the MINDIST-ordered traversal
	// rarely reaches the 10% most Hamming-distant leaves anyway — so
	// only the aggressive cap must prove rejections; the mild cap must
	// still prove the filter was consulted (ProbePages > 0).
	targets := []struct {
		target   float64
		floor    float64
		wantSkip bool
	}{
		{1.0, 1.0, false},
		{0.9, 0.90, false},
		{0.5, 0.70, true},
	}
	for _, rv := range replicationVariants {
		for _, packed := range []bool{false, true} {
			opts := Options{Dim: dim, Disks: disks, Replication: rv.value,
				PageSize: 256, LSH: true, Packed: packed}
			ix := buildFrom(t, opts, pts)

			for _, tc := range targets {
				t.Run(fmt.Sprintf("%s/packed=%v/target=%v", rv.name, packed, tc.target), func(t *testing.T) {
					var recallSum float64
					skipped, probed := 0, 0
					for qi, q := range queries {
						res, stats, err := ix.KNNApprox(q, k, Approx{RecallTarget: tc.target})
						if err != nil {
							t.Fatal(err)
						}
						if len(res) != k {
							t.Fatalf("query %d: %d neighbors, want %d", qi, len(res), k)
						}
						if tc.target == 1 {
							exact, _, err := ix.KNN(q, k)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(res, exact) {
								t.Fatalf("query %d: recall_target=1 differs from exact KNN", qi)
							}
							if stats.PagesSkippedApprox != 0 || stats.ProbePages != 0 {
								t.Fatalf("query %d: recall_target=1 reported filter activity: %+v", qi, stats)
							}
						}
						skipped += stats.PagesSkippedApprox
						probed += stats.ProbePages
						recallSum += recallOf(res, linearScanKNN(truth, q, k, m))
					}
					mean := recallSum / float64(len(queries))
					if mean < tc.floor {
						t.Errorf("mean recall %.3f below floor %.2f", mean, tc.floor)
					}
					if tc.wantSkip && skipped <= 0 {
						t.Errorf("target %v rejected no pages over %d queries — the filter is vacuous",
							tc.target, nq)
					}
					if tc.target < 1 && probed <= 0 {
						t.Errorf("target %v probed no pages — LSH admission never consulted", tc.target)
					}
				})
			}
		}
	}
}

// TestApproxOptionsDefaults pins the index-level knobs: Options.Epsilon
// applies to plain KNN/BatchKNN, a per-query Approx overrides it, and
// invalid knobs are rejected at Open.
func TestApproxOptionsDefaults(t *testing.T) {
	const dim, disks, n, k = 4, 3, 800, 5
	pts := uniformPoints(n, dim, 105)
	ix := buildFrom(t, Options{Dim: dim, Disks: disks, Epsilon: 0.2, PageSize: 256}, pts)

	q := data.Uniform(1, dim, 106)[0]
	if _, stats, err := ix.KNN(q, k); err != nil {
		t.Fatal(err)
	} else if stats.EffectiveEpsilon != 0.2 {
		t.Fatalf("plain KNN under Options.Epsilon=0.2: EffectiveEpsilon %v", stats.EffectiveEpsilon)
	}
	// A per-query override of 0 takes the exact path.
	if _, stats, err := ix.KNNApprox(q, k, Approx{}); err != nil {
		t.Fatal(err)
	} else if stats.EffectiveEpsilon != 0 || stats.PagesSkippedApprox != 0 {
		t.Fatalf("per-query ε=0 override reported approx activity: %+v", stats)
	}
	// The batch path honors the same defaults.
	if _, bs, err := ix.BatchKNN(data.Uniform(4, dim, 107), k); err != nil {
		t.Fatal(err)
	} else if len(bs.PerQuery) != 4 {
		t.Fatalf("batch PerQuery has %d entries, want 4", len(bs.PerQuery))
	} else {
		for i, qs := range bs.PerQuery {
			if qs.EffectiveEpsilon != 0.2 {
				t.Fatalf("batch item %d: EffectiveEpsilon %v, want 0.2", i, qs.EffectiveEpsilon)
			}
		}
	}

	for _, bad := range []Options{
		{Dim: dim, Disks: disks, Epsilon: -0.5},
		{Dim: dim, Disks: disks, Epsilon: 2e6},
		{Dim: dim, Disks: disks, RecallTarget: -0.1},
		{Dim: dim, Disks: disks, RecallTarget: 1.5},
	} {
		if _, err := Open(bad); err == nil {
			t.Errorf("Open accepted invalid approx knobs %+v", bad)
		}
	}
	for _, bad := range []Approx{
		{Epsilon: -1}, {Epsilon: 2e6}, {RecallTarget: -0.1}, {RecallTarget: 2},
	} {
		if _, _, err := ix.KNNApprox(q, k, bad); err == nil {
			t.Errorf("KNNApprox accepted invalid knobs %+v", bad)
		}
		if _, _, err := ix.BatchKNNApprox([][]float64{q}, k, bad); err == nil {
			t.Errorf("BatchKNNApprox accepted invalid knobs %+v", bad)
		}
	}
}
