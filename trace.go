package parsearch

import (
	"context"
	"expvar"
	"fmt"
	"time"

	"parsearch/internal/disk"
	"parsearch/internal/metrics"
)

// This file is the observability layer of the engine: structured
// per-query tracing (Tracer / TraceEvent, installed via Options.Tracer
// or carried in a context) and the metrics registry every query path
// updates (Index.Metrics, PublishExpvar). See README "Observability".

// The trace stages, in the order a query emits them. A k-NN query
// traces plan → (reroute | unreachable)* → (bound_tightened | search)*
// per disk → merge → io → (retry)? → done; range queries skip merge;
// batch queries emit one search event per batch item (Item ≥ 0) around
// the shared plan and io events. Errors surface as a final "error"
// event.
const (
	StagePlan        = "plan"        // failure routing decided
	StageReroute     = "reroute"     // Disk's reads will be served by its replica
	StageUnreachable = "unreachable" // Disk has no live copy; its data is invisible
	StageSearch      = "search"      // one disk's (or batch item's) local search finished
	StageMerge       = "merge"       // local results merged to the global k
	StageIO          = "io"          // the disk array executed the page reads
	StageRetry       = "retry"       // transient faults forced re-read attempts
	StageDone        = "done"        // query finished successfully
	StageError       = "error"       // query returned an error
	// StageRecovery is emitted once by a durable Open that found prior
	// state: Results carries the WAL records replayed, Pages the log
	// generations. StageCheckpoint is emitted by every generation
	// rotation (Checkpoint and durable Build): Results carries the
	// point-table length committed to the snapshot. Both arrive on the
	// index-wide Options.Tracer (ops "recovery" / "checkpoint").
	StageRecovery   = "recovery"
	StageCheckpoint = "checkpoint"
	// StageBoundTightened is emitted by the cooperative k-NN fan-out
	// each time a disk's search lowers the shared global bound; Radius
	// carries the new bound as a metric distance. Events of one disk are
	// delivered after its search releases the shard lock (tracers never
	// run under engine locks), so per-disk event groups may interleave
	// with other disks' tightenings.
	StageBoundTightened = "bound_tightened"
	// StageIngest is emitted once per applied mutation batch (InsertBatch
	// and each AsyncWriter group commit): Results carries the mutations
	// applied. StageReorg is emitted once per Reorganize call: Results
	// carries the buckets split, Pages the points moved between disks.
	// StageCatchup is emitted per served catch-up delta: Results carries
	// the files shipped, Pages the delta bytes. All three arrive on the
	// index-wide Options.Tracer (ops "ingest" / "reorganize" / "catchup").
	StageIngest  = "ingest"
	StageReorg   = "reorganize"
	StageCatchup = "catchup"
	// StageApprox is emitted once per query that ran with the
	// approximate tier armed (ε > 0 or an effective LSH recall cap),
	// after the fan-out: Epsilon carries the governing ε, Pages the
	// pages the approximation skipped (QueryStats.PagesSkippedApprox).
	// Exact queries never emit it.
	StageApprox = "approx"
)

// TraceEvent is one span event of a query's execution. Numeric fields
// not meaningful for a stage are zero; Disk and Item are -1 when the
// event is not scoped to a disk or batch item.
type TraceEvent struct {
	// Query is the engine-wide query sequence number (one per traced
	// KNN/NN/RangeQuery/PartialMatch/BatchKNN call).
	Query uint64
	// Op is the query kind: "knn", "range", or "batch".
	Op string
	// Stage is one of the Stage* constants.
	Stage string
	// Disk scopes per-disk events (search, reroute, unreachable); -1
	// otherwise. For a reroute it names the failed primary disk.
	Disk int
	// Item scopes batch events to a query index within the batch; -1
	// otherwise.
	Item int
	// K is the query's k (0 for range queries).
	K int
	// Results counts neighbors: a disk's local candidates at search, the
	// merged total at merge, the final count at done.
	Results int
	// Pages counts disk blocks: a disk's visited tree pages at search,
	// the executed total at io and done.
	Pages int
	// Retries is the number of re-read attempts at the retry stage.
	Retries int
	// Rerouted and Degraded mirror the QueryStats fields as soon as they
	// are known (plan and done).
	Rerouted bool
	Degraded bool
	// Radius is the NN-sphere radius at merge (0 elsewhere).
	Radius float64
	// Epsilon is the governing ε at the approx stage (0 elsewhere).
	Epsilon float64
	// Elapsed is the wall-clock time since the query started.
	Elapsed time.Duration
	// Err is the error text at the error stage, "" otherwise.
	Err string
}

// String formats the event for logs.
func (ev TraceEvent) String() string {
	s := fmt.Sprintf("q%d %s/%s", ev.Query, ev.Op, ev.Stage)
	if ev.Disk >= 0 {
		s += fmt.Sprintf(" disk=%d", ev.Disk)
	}
	if ev.Item >= 0 {
		s += fmt.Sprintf(" item=%d", ev.Item)
	}
	if ev.Err != "" {
		s += " err=" + ev.Err
	}
	return s
}

// Tracer receives the span events of traced queries. Implementations
// must be safe for concurrent use: the per-disk fan-out emits search
// events from one goroutine per disk, and concurrent queries interleave
// their events. A nil Tracer (the default) disables tracing with no
// per-query cost beyond one pointer check.
type Tracer interface {
	Event(TraceEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(TraceEvent)

// Event calls f(ev).
func (f TracerFunc) Event(ev TraceEvent) { f(ev) }

// tracerKey carries a Tracer in a context.
type tracerKey struct{}

// WithTracer returns a context carrying the tracer. A context tracer
// takes precedence over Options.Tracer for queries run through the
// *Context methods (KNNContext, RangeQueryContext, BatchKNNContext),
// scoping a trace to one request instead of the whole index.
func WithTracer(ctx context.Context, t Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// ContextTracer returns the tracer carried by ctx, or nil.
func ContextTracer(ctx context.Context) Tracer {
	t, _ := ctx.Value(tracerKey{}).(Tracer)
	return t
}

// tracerFor resolves the tracer of one query: the context's, else the
// index-wide Options.Tracer, else nil.
func (ix *Index) tracerFor(ctx context.Context) Tracer {
	if t := ContextTracer(ctx); t != nil {
		return t
	}
	return ix.opts.Tracer
}

// span is the per-query emitting state: a resolved tracer plus the
// query identity every event shares. The zero span (tracer nil) makes
// every emit a no-op, so untraced queries pay one nil check per stage.
type span struct {
	tr    Tracer
	query uint64
	op    string
	start time.Time
}

// newSpan starts a span for one query; it assigns the query sequence
// number only when a tracer is attached.
func (ix *Index) newSpan(ctx context.Context, op string) span {
	tr := ix.tracerFor(ctx)
	if tr == nil {
		return span{}
	}
	return span{tr: tr, query: ix.querySeq.Add(1), op: op, start: time.Now()}
}

// emit sends one event, filling the span-wide fields. Safe to call
// concurrently from the per-disk fan-out goroutines (Tracer
// implementations must tolerate that; see Tracer).
func (s *span) emit(ev TraceEvent) {
	if s.tr == nil {
		return
	}
	ev.Query = s.query
	ev.Op = s.op
	ev.Elapsed = time.Since(s.start)
	s.tr.Event(ev)
}

// on reports whether the span traces (events would be delivered).
func (s *span) on() bool { return s.tr != nil }

// planEvents emits the routing decisions of a freshly planned query:
// one reroute event per failed primary with a live replica, one
// unreachable event per shard with no live copy, then the plan summary.
func (s *span) planEvents(routes []route, degraded bool) {
	if s.tr == nil {
		return
	}
	for d := range routes {
		switch {
		case routes[d].sh == nil:
			s.emit(TraceEvent{Stage: StageUnreachable, Disk: d, Item: -1})
		case routes[d].rerouted:
			s.emit(TraceEvent{Stage: StageReroute, Disk: d, Item: -1, Rerouted: true})
		}
	}
	s.emit(TraceEvent{Stage: StagePlan, Disk: -1, Item: -1, Degraded: degraded})
}

// ioEvents emits the io (and, when retries happened, retry) events of
// an executed read batch.
func (s *span) ioEvents(batch disk.BatchResult) {
	if s.tr == nil {
		return
	}
	s.emit(TraceEvent{Stage: StageIO, Disk: -1, Item: -1, Pages: batch.Total, Retries: batch.Retries})
	if batch.Retries > 0 {
		s.emit(TraceEvent{Stage: StageRetry, Disk: -1, Item: -1, Retries: batch.Retries})
	}
}

// errEvent emits the error event for a failed query.
func (s *span) errEvent(err error) {
	if s.tr == nil || err == nil {
		return
	}
	s.emit(TraceEvent{Stage: StageError, Disk: -1, Item: -1, Err: err.Error()})
}

// Metrics returns a snapshot of the index's cumulative metrics: query
// counts by kind, page reads (total, per disk, and as a histogram),
// simulated per-disk service time, fault-path counters (retries,
// reroutes, unreachable pages, degraded queries), and the per-disk
// balance coefficient over the lifetime page reads. Counters persist
// across Save/Load (the snapshot carries them) and accumulate until
// ResetMetrics.
func (ix *Index) Metrics() metrics.Snapshot {
	return ix.reg.Snapshot()
}

// ResetMetrics zeroes the metrics registry (the disk array's lifetime
// block counters included), e.g. between benchmark phases.
func (ix *Index) ResetMetrics() {
	ix.reg = metrics.NewRegistry(ix.opts.Disks)
	ix.array.ResetCounters()
}

// PublishExpvar publishes the index's metrics under the given expvar
// name (rendered as JSON on /debug/vars). expvar names are global and
// permanent, so publishing the same name twice — even from different
// indexes — returns an error instead of panicking; the variable keeps
// reading the live registry of the index it was published from.
func (ix *Index) PublishExpvar(name string) error {
	if name == "" {
		return fmt.Errorf("parsearch: empty expvar name")
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("parsearch: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() interface{} {
		return ix.Metrics()
	}))
	return nil
}

// recordQuery folds one finished query's statistics into the registry.
// kind selects the query counter; batch carries the executed I/O (its
// per-disk service times feed the per-disk time accumulators); start is
// the query's wall-clock entry time (QueryWallNs feeds the bench
// harness's latency percentiles).
func (ix *Index) recordQuery(kind *metrics.Counter, qs *QueryStats, batch disk.BatchResult, start time.Time) {
	kind.Inc()
	ix.reg.PagesRead.Add(int64(qs.TotalPages))
	ix.reg.CellsVisited.Add(int64(qs.Cells))
	ix.reg.Retries.Add(int64(qs.Retries))
	ix.reg.Rerouted.Add(int64(qs.Rerouted))
	ix.reg.Unreachable.Add(int64(qs.Unreachable))
	ix.reg.SearchPages.Add(int64(qs.SearchPages))
	ix.reg.PagesSavedByBound.Add(int64(qs.PagesSavedByBound))
	ix.reg.PagesSavedByRemoteBound.Add(int64(qs.PagesSavedByRemoteBound))
	ix.reg.BoundTightenings.Add(int64(qs.BoundTightenings))
	if qs.Degraded {
		ix.reg.DegradedQueries.Inc()
	}
	for d, pages := range qs.PagesPerDisk {
		ix.reg.PagesPerDisk.Add(d, int64(pages))
	}
	for d, t := range batch.Times {
		ix.reg.ServiceTimePerDisk.Add(d, t.Nanoseconds())
	}
	ix.reg.DistCompsSaved.Add(int64(qs.DistCompsSaved))
	ix.recordApprox(qs)
	ix.reg.QueryPages.Observe(int64(qs.TotalPages))
	ix.reg.QueryTimeNs.Observe(int64(qs.ParallelTime * 1e9))
	ix.reg.QueryWallNs.Observe(time.Since(start).Nanoseconds())
}

// recordApprox folds one query's approximate-tier statistics into the
// registry. Exact queries (EffectiveEpsilon 0, nothing probed or
// skipped) leave every approx metric untouched, so the exact path's
// metrics stay identical to an engine without the tier.
func (ix *Index) recordApprox(qs *QueryStats) {
	if qs.EffectiveEpsilon == 0 && qs.ProbePages == 0 && qs.PagesSkippedApprox == 0 {
		return
	}
	ix.reg.ApproxQueries.Inc()
	ix.reg.PagesSkippedApprox.Add(int64(qs.PagesSkippedApprox))
	if qs.ProbePages > 0 {
		ix.reg.LSHProbePages.Observe(int64(qs.ProbePages))
	}
}
