package parsearch

import (
	"context"
	"errors"
	"fmt"
	iofs "io/fs"
	"strconv"
	"strings"
	"time"

	"parsearch/internal/fsx"
	"parsearch/internal/vec"
	"parsearch/internal/wal"
)

// This file is the durability subsystem of the engine: a write-ahead
// mutation log (internal/wal) plus generation-numbered snapshots in one
// directory (Options.Dir), so an index opened with Options.Durable
// survives process death without losing acknowledged mutations.
//
// # Generation lifecycle
//
// The directory holds at most two generations of two file kinds:
//
//	snap-<gen>.snap — a full snapshot (the Save format): the state at
//	                  the instant generation <gen> began
//	wal-<gen>.log   — every mutation acknowledged while <gen> was
//	                  current, starting with a checkpoint record
//
// A fresh index starts at generation 0 with an empty log and no
// snapshot. Checkpoint rotates: it cuts the point table and swaps in
// the log of generation g+1 atomically under the metadata lock, then
// writes snap-(g+1) off-lock (tmp file, fsync, rename — the rename is
// the commit point), then prunes generations older than g. Recovery
// loads the newest loadable snapshot and replays the contiguous log
// chain above it, so a crash anywhere in a rotation is safe: until the
// rename commits, the previous snapshot plus the chained logs
// reconstruct exactly the acknowledged state.
//
// Build cannot be expressed as a log suffix (it replaces everything),
// so it rotates with the rebase flag set in the new log's checkpoint
// record and the commit order inverted: snapshot first, then the
// in-memory cutover. Mutations are stalled (rotMu held exclusively)
// from before the snapshot write until the swap, so a rebase log
// without its snapshot can only mean Build never returned — recovery
// discards it, which reconstructs exactly the acknowledged (pre-Build)
// state.
//
// # Recovery
//
// Open replays snap-s + wal-s + wal-(s+1) + ... in order, validating
// that each log opens with its generation's checkpoint record and that
// insert IDs are exactly sequential. A torn tail (incomplete final
// frame) is legal only in the newest log — rotation fully syncs a log
// before opening its successor — and is truncated silently. Everything
// else (mid-chain tears, CRC failures, framing or ID violations) is
// surfaced as ErrCorrupt: the index never silently drops or invents a
// mutation. Options.Salvage turns that refusal into best-effort
// recovery of the longest valid prefix.
const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	walPrefix  = "wal-"
	walSuffix  = ".log"
	tmpSuffix  = ".tmp"
	// genDigits zero-pads generation numbers so lexicographic file
	// order is generation order.
	genDigits = 20
)

// ErrCorrupt reports damaged durable state that is provably not a
// crash artifact: a mid-chain torn log, a CRC or framing violation, a
// checkpoint/ID sequence violation, or an unloadable newest snapshot.
// Open fails with it rather than recovering silently-wrong state;
// Options.Salvage downgrades it to best-effort prefix recovery.
// Classify with errors.Is.
var ErrCorrupt = errors.New("parsearch: corrupt durable state")

// ErrClosed is returned by mutations on a closed index.
var ErrClosed = errors.New("parsearch: index closed")

// WALSyncPolicy selects when the mutation log is fsynced.
type WALSyncPolicy string

const (
	// WALSyncAlways (the default) group-commits an fsync before every
	// mutation returns: acknowledged mutations survive any crash.
	WALSyncAlways WALSyncPolicy = "always"
	// WALSyncOS leaves log syncing to the OS page cache (rotation and
	// Close still sync). A crash may lose the most recent mutations,
	// but recovery still yields a clean prefix of the acknowledged
	// mutation order — never a reordered or corrupted state.
	WALSyncOS WALSyncPolicy = "os"
)

func (p WALSyncPolicy) walPolicy() (wal.SyncPolicy, error) {
	switch p {
	case "", WALSyncAlways:
		return wal.SyncAlways, nil
	case WALSyncOS:
		return wal.SyncNone, nil
	default:
		return 0, fmt.Errorf("parsearch: unknown WAL sync policy %q", p)
	}
}

func snapName(gen uint64) string {
	return fmt.Sprintf("%s%0*d%s", snapPrefix, genDigits, gen, snapSuffix)
}

func walName(gen uint64) string {
	return fmt.Sprintf("%s%0*d%s", walPrefix, genDigits, gen, walSuffix)
}

// parseGen extracts the generation from a file name of the given
// shape; ok is false for foreign names.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != genDigits {
		return 0, false
	}
	g, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// RecoveryInfo reports what Open's durable recovery found and did.
type RecoveryInfo struct {
	// Recovered is true when the directory held prior state (a
	// snapshot or any log records).
	Recovered bool `json:"recovered"`
	// HaveSnapshot/SnapshotGen identify the snapshot recovery loaded.
	HaveSnapshot bool   `json:"have_snapshot"`
	SnapshotGen  uint64 `json:"snapshot_gen"`
	// WALsReplayed counts the log generations replayed; Records the
	// mutation records applied.
	WALsReplayed int `json:"wals_replayed"`
	Records      int `json:"records"`
	// TornBytes is the length of the torn tail truncated from the
	// newest log (0 after a clean shutdown).
	TornBytes int64 `json:"torn_bytes"`
	// Salvaged is true when Options.Salvage discarded damage to
	// recover a prefix; DroppedBytes counts the bytes it dropped.
	Salvaged     bool  `json:"salvaged"`
	DroppedBytes int64 `json:"dropped_bytes"`
}

// Recovery returns what the durable recovery at Open found; the zero
// value on non-durable indexes.
func (ix *Index) Recovery() RecoveryInfo { return ix.recov }

// DurabilityInfo is a point-in-time view of the durability subsystem,
// the source of the server's statusz durability section.
type DurabilityInfo struct {
	Durable    bool   `json:"durable"`
	Dir        string `json:"dir,omitempty"`
	Generation uint64 `json:"generation"`
	SyncPolicy string `json:"sync_policy,omitempty"`
	// WALWrittenBytes / WALSyncedBytes are the current log's appended
	// and fsync-covered lengths; WALLagBytes is their difference — the
	// bytes a crash right now would lose (always 0 with WALSyncAlways
	// outside an in-flight mutation).
	WALWrittenBytes int64 `json:"wal_written_bytes"`
	WALSyncedBytes  int64 `json:"wal_synced_bytes"`
	WALLagBytes     int64 `json:"wal_lag_bytes"`
	Closed          bool  `json:"closed"`
	// Recovery is what the durable recovery at Open found.
	Recovery RecoveryInfo `json:"recovery"`
}

// Durability returns the current durability state. On a non-durable
// index only Closed is meaningful.
func (ix *Index) Durability() DurabilityInfo {
	ix.meta.Lock()
	w, gen, closed := ix.wal, ix.gen, ix.closed
	ix.meta.Unlock()
	info := DurabilityInfo{
		Durable:    ix.opts.Durable,
		Dir:        ix.opts.Dir,
		Generation: gen,
		Closed:     closed,
		Recovery:   ix.recov,
	}
	if ix.opts.Durable {
		info.SyncPolicy = string(ix.opts.WALSync)
		if info.SyncPolicy == "" {
			info.SyncPolicy = string(WALSyncAlways)
		}
	}
	if w != nil {
		info.WALWrittenBytes = w.Written()
		info.WALSyncedBytes = w.Synced()
		info.WALLagBytes = info.WALWrittenBytes - info.WALSyncedBytes
	}
	return info
}

// Close flushes and fsyncs the mutation log and closes it. Further
// mutations (Insert, Delete, Build, Checkpoint) return ErrClosed;
// queries and Save keep working against the in-memory state. Close is
// idempotent. On a non-durable index it only stops mutations.
func (ix *Index) Close() error {
	ix.ckptMu.Lock()
	defer ix.ckptMu.Unlock()
	ix.rotMu.Lock()
	defer ix.rotMu.Unlock()
	ix.meta.Lock()
	if ix.closed {
		ix.meta.Unlock()
		return nil
	}
	ix.closed = true
	w := ix.wal
	ix.meta.Unlock()
	if w != nil {
		if err := w.Close(); err != nil {
			return fmt.Errorf("parsearch: closing wal: %w", err)
		}
	}
	return nil
}

// newWALWriter wraps a log file in a writer wired to the metrics
// registry.
func (ix *Index) newWALWriter(f fsx.File, validLen int64) *wal.Writer {
	policy, err := ix.opts.WALSync.walPolicy()
	if err != nil {
		panic(err) // validated in openDurable
	}
	w := wal.NewWriter(f, validLen, policy)
	w.OnAppend = func(n int) {
		ix.reg.WALAppends.Inc()
		ix.reg.WALBytes.Add(int64(n))
	}
	w.OnSync = func(d time.Duration) {
		ix.reg.WALSyncs.Inc()
		ix.reg.WALFsyncNs.Observe(d.Nanoseconds())
	}
	return w
}

// openDurable opens a durable index over the given filesystem,
// recovering any prior state it holds. Open calls it with an OS
// directory; the crash battery calls it directly with an fsx.Mem.
func openDurable(opts Options, fs fsx.FS) (*Index, error) {
	opts.Durable = true
	if _, err := opts.WALSync.walPolicy(); err != nil {
		return nil, err
	}
	ix, err := open(opts)
	if err != nil {
		return nil, err
	}
	if err := ix.initDurable(fs); err != nil {
		return nil, err
	}
	return ix, nil
}

// initDurable recovers prior durable state from fs and arms the log
// writer. Called once from openDurable, before the index is shared, so
// no locks are needed.
func (ix *Index) initDurable(fs fsx.FS) error {
	ix.fs = fs
	names, err := fs.List()
	if err != nil {
		return fmt.Errorf("parsearch: listing durable dir: %w", err)
	}
	var snapGens, walGens []uint64
	for _, name := range names {
		// Tmp files are the residue of a rotation that crashed before
		// its rename commit: dead either way, deleted on sight.
		if strings.HasSuffix(name, tmpSuffix) {
			_ = fs.Remove(name)
			continue
		}
		if g, ok := parseGen(name, snapPrefix, snapSuffix); ok {
			snapGens = append(snapGens, g)
		} else if g, ok := parseGen(name, walPrefix, walSuffix); ok {
			walGens = append(walGens, g)
		}
	}
	// List is sorted and the names zero-padded, so both slices are
	// ascending.

	info := RecoveryInfo{}

	// Load the newest loadable snapshot. An unloadable newest snapshot
	// is corruption, not a crash artifact — snapshots commit atomically
	// via rename, so a half-written one cannot carry the final name —
	// and is refused, unless Salvage falls back to an older generation.
	var base *snapshotData
	for i := len(snapGens) - 1; i >= 0; i-- {
		g := snapGens[i]
		raw, err := fs.ReadFile(snapName(g))
		if err != nil {
			return fmt.Errorf("parsearch: reading %s: %w", snapName(g), err)
		}
		sd, derr := decodeSnapshot(raw)
		if derr != nil {
			if !ix.opts.Salvage {
				return fmt.Errorf("%w: %s: %v", ErrCorrupt, snapName(g), derr)
			}
			info.Salvaged = true
			info.DroppedBytes += int64(len(raw))
			_ = fs.Remove(snapName(g))
			continue
		}
		if sd.opts.Dim != ix.opts.Dim {
			return fmt.Errorf("parsearch: durable dir holds dimension-%d data, options say %d",
				sd.opts.Dim, ix.opts.Dim)
		}
		base = sd
		info.HaveSnapshot = true
		info.SnapshotGen = g
		break
	}

	var points [][]float64
	if base != nil {
		points = base.points
	}

	// The replay base must be the snapshot or the empty state of
	// generation 0; a log chain starting above 0 with no snapshot
	// below it has lost its base and cannot be replayed honestly.
	if base == nil && len(walGens) > 0 && walGens[0] != 0 {
		if !ix.opts.Salvage {
			return fmt.Errorf("%w: log chain starts at generation %d with no snapshot", ErrCorrupt, walGens[0])
		}
		info.Salvaged = true
		for _, g := range walGens {
			if raw, err := fs.ReadFile(walName(g)); err == nil {
				info.DroppedBytes += int64(len(raw))
			}
			_ = fs.Remove(walName(g))
		}
		walGens = nil
	}

	// Replay the contiguous log chain above the base.
	replayFrom := info.SnapshotGen
	if base == nil && len(walGens) > 0 {
		replayFrom = walGens[0]
	}
	rs := &replayState{
		dim:      ix.opts.Dim,
		points:   points,
		snapGen:  info.SnapshotGen,
		haveSnap: info.HaveSnapshot,
	}
	chainEnd := replayFrom // one past the last replayed generation
	stoppedAt := replayFrom
	torn := false
	for g := replayFrom; ; g++ {
		data, err := fs.ReadFile(walName(g))
		if errors.Is(err, iofs.ErrNotExist) {
			stoppedAt = g
			break
		}
		if err != nil {
			return fmt.Errorf("parsearch: reading %s: %w", walName(g), err)
		}
		if torn {
			// A torn or truncated log below a newer one violates the
			// rotation protocol (logs are fully synced before a
			// successor is created): the newer records are unreachable.
			if !ix.opts.Salvage {
				return fmt.Errorf("%w: %s follows a torn log", ErrCorrupt, walName(g))
			}
			info.Salvaged = true
			info.DroppedBytes += int64(len(data))
			_ = fs.Remove(walName(g))
			continue
		}
		rs.expectCkpt = true
		rs.curGen = g
		stats, rerr := wal.Replay(data, rs.apply)
		switch {
		case errors.Is(rerr, errDiscardGeneration):
			// A rebase log without its snapshot: the Build that wrote
			// it never returned, so the whole generation is
			// unacknowledged. Discard it; the chain below is the state.
			_ = fs.Remove(walName(g))
			torn = true
			continue
		case rerr != nil:
			if !ix.opts.Salvage {
				return fmt.Errorf("%w: %s: %v", ErrCorrupt, walName(g), rerr)
			}
			// Salvage: keep the valid prefix, drop the rest, and stop
			// the chain — later records depend on the dropped ones.
			info.Salvaged = true
			info.DroppedBytes += int64(len(data)) - stats.ValidLen
			if err := truncateFile(fs, walName(g), stats.ValidLen); err != nil {
				return fmt.Errorf("parsearch: truncating %s: %w", walName(g), err)
			}
			torn = true
		case stats.TornBytes > 0:
			// The expected crash residue: an incomplete final frame.
			info.TornBytes += stats.TornBytes
			if err := truncateFile(fs, walName(g), stats.ValidLen); err != nil {
				return fmt.Errorf("parsearch: truncating %s: %w", walName(g), err)
			}
			torn = true
		}
		info.WALsReplayed++
		info.Records += stats.Records
		chainEnd = g + 1
	}

	// Logs above the first missing generation are unreachable: the
	// chain's base link is gone, so their records cannot be ordered
	// against the recovered state. Starting a fresh log at the gap and
	// later truncating them via Create would silently discard old
	// records — refuse instead (or drop them explicitly under Salvage).
	for _, g := range walGens {
		if g <= stoppedAt {
			continue
		}
		if !ix.opts.Salvage {
			return fmt.Errorf("%w: %s is unreachable (%s is missing)", ErrCorrupt, walName(g), walName(stoppedAt))
		}
		info.Salvaged = true
		if raw, err := fs.ReadFile(walName(g)); err == nil {
			info.DroppedBytes += int64(len(raw))
		}
		_ = fs.Remove(walName(g))
	}

	// Rebuild the in-memory index from the recovered point table.
	if len(rs.points) > 0 {
		st, pts, live, err := ix.buildState(rs.points)
		if err != nil {
			return fmt.Errorf("parsearch: rebuilding recovered state: %w", err)
		}
		ix.st = st
		ix.points = pts
		ix.live = live
	}
	if base != nil || info.Records > 0 || info.WALsReplayed > 0 {
		info.Recovered = true
	}
	// Restore the cumulative metrics from the snapshot when the blob
	// is compatible with the current configuration; a mismatch only
	// drops counter history, never data.
	if base != nil && base.metrics != nil {
		_ = ix.reg.UnmarshalBinary(base.metrics)
	}

	// Arm the writer: resume the newest log of the chain, or start a
	// fresh one.
	gen := replayFrom
	if chainEnd > replayFrom {
		gen = chainEnd - 1
	}
	if chainEnd > replayFrom {
		f, err := fs.Append(walName(gen))
		if err != nil {
			return fmt.Errorf("parsearch: opening %s: %w", walName(gen), err)
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return fmt.Errorf("parsearch: sizing %s: %w", walName(gen), err)
		}
		w := ix.newWALWriter(f, size)
		if size == 0 {
			// The log exists but its checkpoint record never reached
			// storage (a crash during rotation, or a salvage that
			// dropped everything): reseed it so the chain invariant —
			// every log opens with its checkpoint — holds for the
			// records about to be appended.
			if err := w.Append(wal.EncodeCheckpoint(gen, false)); err != nil {
				_ = w.Close()
				return fmt.Errorf("parsearch: reseeding %s: %w", walName(gen), err)
			}
			if err := w.Sync(); err != nil {
				_ = w.Close()
				return fmt.Errorf("parsearch: syncing %s: %w", walName(gen), err)
			}
		}
		ix.wal = w
	} else {
		f, err := fs.Create(walName(gen))
		if err != nil {
			return fmt.Errorf("parsearch: creating %s: %w", walName(gen), err)
		}
		w := ix.newWALWriter(f, 0)
		if err := w.Append(wal.EncodeCheckpoint(gen, false)); err != nil {
			_ = w.Close()
			return fmt.Errorf("parsearch: seeding %s: %w", walName(gen), err)
		}
		if err := w.Sync(); err != nil {
			_ = w.Close()
			return fmt.Errorf("parsearch: syncing %s: %w", walName(gen), err)
		}
		// The log's directory entry must be durable before any mutation
		// is acknowledged on it — fsyncing the file alone does not
		// commit the name, and losing the file loses the whole log.
		if err := fs.SyncDir(); err != nil {
			_ = w.Close()
			return fmt.Errorf("parsearch: syncing durable dir for %s: %w", walName(gen), err)
		}
		ix.wal = w
	}
	ix.gen = gen
	ix.recov = info
	if info.Recovered {
		ix.reg.Recoveries.Inc()
		ix.reg.RecoveredRecords.Add(int64(info.Records))
	}
	// Prune only below the replay base. Pruning relative to the resumed
	// generation would be wrong: after repeated crashes the chain can
	// span several log generations with no snapshot underneath, and
	// every one of them is still needed by the next recovery.
	ix.pruneGenerations(replayFrom + 1)

	sp := ix.newSpan(context.Background(), "recovery")
	sp.emit(TraceEvent{Stage: StageRecovery, Disk: -1, Item: -1,
		Results: info.Records, Pages: info.WALsReplayed})
	return nil
}

// errDiscardGeneration is the internal signal that a log generation's
// rebase checkpoint has no committed snapshot: the generation belongs
// to a Build that never returned and must be discarded whole.
var errDiscardGeneration = errors.New("parsearch: discard unacknowledged rebase generation")

// replayState applies one log chain's records to a point table,
// enforcing the invariants the writers maintain — the first record of
// each generation is its checkpoint, insert IDs are exactly
// sequential, deletes name live IDs. A violation means the log was
// damaged in a way the CRC did not catch, so it surfaces as
// ErrCorrupt.
type replayState struct {
	dim      int
	points   [][]float64
	snapGen  uint64
	haveSnap bool

	expectCkpt bool
	curGen     uint64
}

func (rs *replayState) apply(rec wal.Record) error {
	if rs.expectCkpt {
		if rec.Type != wal.RecCheckpoint || rec.Gen != rs.curGen {
			return fmt.Errorf("%w: log %d does not start with its checkpoint record", ErrCorrupt, rs.curGen)
		}
		if rec.Rebase && !(rs.haveSnap && rs.curGen == rs.snapGen) {
			return errDiscardGeneration
		}
		rs.expectCkpt = false
		return nil
	}
	switch rec.Type {
	case wal.RecCheckpoint:
		return fmt.Errorf("%w: checkpoint record inside log %d", ErrCorrupt, rs.curGen)
	case wal.RecInsert:
		if rec.ID != uint64(len(rs.points)) {
			return fmt.Errorf("%w: insert id %d, expected %d", ErrCorrupt, rec.ID, len(rs.points))
		}
		if len(rec.Point) != rs.dim {
			return fmt.Errorf("%w: insert dimension %d, index has %d", ErrCorrupt, len(rec.Point), rs.dim)
		}
		rs.points = append(rs.points, rec.Point)
	case wal.RecDelete:
		if rec.ID >= uint64(len(rs.points)) || rs.points[rec.ID] == nil {
			return fmt.Errorf("%w: delete of absent id %d", ErrCorrupt, rec.ID)
		}
		rs.points[rec.ID] = nil
	}
	return nil
}

// truncateFile cuts name to size bytes.
func truncateFile(fs fsx.FS, name string, size int64) error {
	f, err := fs.Append(name)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Checkpoint rotates the durable generation: it cuts the point table,
// swaps in a fresh log, writes the cut as the next snapshot (tmp file,
// fsync, atomic rename), and prunes generations older than the
// previous one. Mutations keep flowing throughout — only the cut
// itself holds the metadata lock. A crash or error anywhere in the
// rotation is safe: recovery falls back to the previous snapshot and
// replays the chained logs across the unfinished rotation.
func (ix *Index) Checkpoint() error {
	if !ix.opts.Durable {
		return fmt.Errorf("parsearch: Checkpoint on a non-durable index")
	}
	ix.ckptMu.Lock()
	defer ix.ckptMu.Unlock()

	// The cut, under meta: fully sync the old log (so torn tails only
	// ever exist in the newest one), seed and sync the successor, copy
	// the point table, and swap the writer. Mutations before the cut
	// are in the old log and the copied table; mutations after land in
	// the new log — exactly what snap-(g+1) + wal-(g+1) will replay to.
	ix.meta.Lock()
	if ix.closed {
		ix.meta.Unlock()
		return ErrClosed
	}
	old := ix.wal
	if err := old.Sync(); err != nil {
		ix.meta.Unlock()
		return fmt.Errorf("parsearch: syncing wal before checkpoint: %w", err)
	}
	newGen := ix.gen + 1
	f, err := ix.fs.Create(walName(newGen))
	if err != nil {
		ix.meta.Unlock()
		return fmt.Errorf("parsearch: creating %s: %w", walName(newGen), err)
	}
	nw := ix.newWALWriter(f, 0)
	if err := nw.Append(wal.EncodeCheckpoint(newGen, false)); err != nil {
		ix.meta.Unlock()
		_ = nw.Close()
		_ = ix.fs.Remove(walName(newGen))
		return fmt.Errorf("parsearch: seeding %s: %w", walName(newGen), err)
	}
	if err := nw.Sync(); err != nil {
		ix.meta.Unlock()
		_ = nw.Close()
		_ = ix.fs.Remove(walName(newGen))
		return fmt.Errorf("parsearch: syncing %s: %w", walName(newGen), err)
	}
	// Make the new log's directory entry durable before any mutation is
	// acknowledged on it: after the swap below, acked mutations live
	// only in wal-(g+1), and a crash must not be able to erase the file
	// itself.
	if err := ix.fs.SyncDir(); err != nil {
		ix.meta.Unlock()
		_ = nw.Close()
		_ = ix.fs.Remove(walName(newGen))
		return fmt.Errorf("parsearch: syncing durable dir for %s: %w", walName(newGen), err)
	}
	points := make([]vec.Point, len(ix.points))
	copy(points, ix.points)
	ix.wal = nw
	ix.gen = newGen
	ix.meta.Unlock()
	// In-flight mutations still waiting on the old writer were covered
	// by the Sync above (they appended before we took meta), and
	// nothing can append to it after the swap.
	_ = old.Close()

	// The commit, off-lock: snapshot the cut and rename it in. On
	// failure the rotation is incomplete but the chain is intact —
	// recovery replays wal-g + wal-(g+1) over the previous snapshot.
	if err := ix.writeSnapFile(newGen, points); err != nil {
		return err
	}
	ix.pruneGenerations(newGen)

	sp := ix.newSpan(context.Background(), "checkpoint")
	sp.emit(TraceEvent{Stage: StageCheckpoint, Disk: -1, Item: -1, Results: len(points)})
	return nil
}

// writeSnapFile writes the given cut as snap-<gen> via tmp + fsync +
// rename; the rename is the commit point.
func (ix *Index) writeSnapFile(gen uint64, points []vec.Point) error {
	tmp := snapName(gen) + tmpSuffix
	f, err := ix.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("parsearch: creating %s: %w", tmp, err)
	}
	if err := ix.writeSnapshot(f, points); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("parsearch: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("parsearch: closing %s: %w", tmp, err)
	}
	if err := ix.fs.Rename(tmp, snapName(gen)); err != nil {
		return fmt.Errorf("parsearch: committing %s: %w", snapName(gen), err)
	}
	return nil
}

// pruneGenerations deletes snapshots and logs older than cur-1. The
// previous generation is kept so recovery has a fallback if the
// current snapshot turns out unreadable. Best-effort: a file that
// cannot be removed now is removed by a later rotation.
func (ix *Index) pruneGenerations(cur uint64) {
	if cur < 2 {
		return
	}
	names, err := ix.fs.List()
	if err != nil {
		return
	}
	for _, name := range names {
		g, ok := parseGen(name, snapPrefix, snapSuffix)
		if !ok {
			g, ok = parseGen(name, walPrefix, walSuffix)
		}
		if ok && g < cur-1 {
			_ = ix.fs.Remove(name)
		}
	}
}

// rebaseDurable is Build's durable rotation: commit the freshly built
// state as the next generation's snapshot, then cut over. The commit
// order is inverted relative to Checkpoint — the rebase log and the
// snapshot become durable BEFORE the in-memory cutover — and mutations
// are stalled for the duration (rotMu held exclusively), so the rebase
// log can never hold acknowledged mutations that recovery would
// discard: if the snapshot rename did not commit, Build never
// returned, and recovery's discard of the rebase log reconstructs
// exactly the acknowledged (pre-Build) state.
func (ix *Index) rebaseDurable(st *state, pts []vec.Point, live int) error {
	ix.ckptMu.Lock()
	defer ix.ckptMu.Unlock()
	ix.rotMu.Lock()
	defer ix.rotMu.Unlock()

	ix.meta.Lock()
	if ix.closed {
		ix.meta.Unlock()
		return ErrClosed
	}
	old := ix.wal
	newGen := ix.gen + 1
	ix.meta.Unlock()

	// Durable commit: rebase log first, snapshot rename last. Recovery
	// keys off the rename — a rebase log whose snapshot is absent is
	// discarded — so this order makes the crash window unambiguous.
	f, err := ix.fs.Create(walName(newGen))
	if err != nil {
		return fmt.Errorf("parsearch: creating %s: %w", walName(newGen), err)
	}
	nw := ix.newWALWriter(f, 0)
	if err := nw.Append(wal.EncodeCheckpoint(newGen, true)); err != nil {
		_ = nw.Close()
		_ = ix.fs.Remove(walName(newGen))
		return fmt.Errorf("parsearch: seeding %s: %w", walName(newGen), err)
	}
	if err := nw.Sync(); err != nil {
		_ = nw.Close()
		_ = ix.fs.Remove(walName(newGen))
		return fmt.Errorf("parsearch: syncing %s: %w", walName(newGen), err)
	}
	// The rebase log's name must be durable before the snapshot rename
	// commits the generation: recovery pairs the two, and acked
	// mutations land in this log right after the cutover.
	if err := ix.fs.SyncDir(); err != nil {
		_ = nw.Close()
		_ = ix.fs.Remove(walName(newGen))
		return fmt.Errorf("parsearch: syncing durable dir for %s: %w", walName(newGen), err)
	}
	if err := ix.writeSnapFile(newGen, pts); err != nil {
		_ = nw.Close()
		_ = ix.fs.Remove(walName(newGen))
		return err
	}

	// Committed. Cut over memory and the writer; mutations are still
	// excluded by rotMu, queries switch atomically under mu.
	ix.mu.Lock()
	ix.meta.Lock()
	ix.st = st
	ix.points = pts
	ix.live = live
	ix.version++
	ix.wal = nw
	ix.gen = newGen
	ix.meta.Unlock()
	ix.mu.Unlock()
	_ = old.Close()
	ix.pruneGenerations(newGen)

	sp := ix.newSpan(context.Background(), "checkpoint")
	sp.emit(TraceEvent{Stage: StageCheckpoint, Disk: -1, Item: -1, Results: live})
	return nil
}
