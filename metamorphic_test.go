package parsearch

// Metamorphic tests for the k-NN engine: transformations of the input
// vector set with a known, provable effect on query answers. Each
// relation runs with and without replication, since the replicated
// read path routes through different shards.
//
//   - Permuting the input order changes IDs but not the answer set.
//   - Duplicating every point doubles each neighbor distance's
//     multiplicity in a 2k query.
//   - The disk count is a pure layout choice: answers are identical
//     (IDs included) for any number of disks.
//   - For k ∈ {1, 5, n} the engine equals the brute-force linear scan.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"parsearch/internal/data"
)

// buildFrom builds an index over the given points (IDs = positions).
func buildFrom(t *testing.T, opts Options, pts [][]float64) *Index {
	t.Helper()
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	return ix
}

// uniformPoints converts data.Uniform output to the Build input type.
func uniformPoints(n, dim int, seed int64) [][]float64 {
	pts := data.Uniform(n, dim, seed)
	raw := make([][]float64, n)
	for i := range pts {
		raw[i] = pts[i]
	}
	return raw
}

// replicationVariants names the two read paths every relation must
// hold on.
var replicationVariants = []struct {
	name  string
	value int
}{
	{"replication=0", 0},
	{"replication=1", 1},
}

func TestMetamorphicPermutationInvariance(t *testing.T) {
	const dim, disks, n, k = 5, 4, 900, 8
	for _, rv := range replicationVariants {
		t.Run(rv.name, func(t *testing.T) {
			pts := uniformPoints(n, dim, 61)
			perm := make([][]float64, n)
			order := rand.New(rand.NewSource(7)).Perm(n)
			for i, j := range order {
				perm[j] = pts[i]
			}
			opts := Options{Dim: dim, Disks: disks, Replication: rv.value}
			orig := buildFrom(t, opts, pts)
			shuf := buildFrom(t, opts, perm)

			for qi, q := range data.Uniform(6, dim, 62) {
				a, _, err := orig.KNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := shuf.KNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != k || len(b) != k {
					t.Fatalf("query %d: %d/%d neighbors, want %d", qi, len(a), len(b), k)
				}
				// IDs are positions, so they differ; the (distance,
				// point) sequence must not. Uniform random coordinates
				// make exact distance ties impossible outside
				// duplicates, so the sorted orders align one-to-one.
				for j := range a {
					if a[j].Dist != b[j].Dist {
						t.Fatalf("query %d neighbor %d: dist %v vs %v after permutation",
							qi, j, a[j].Dist, b[j].Dist)
					}
					for c := range a[j].Point {
						if a[j].Point[c] != b[j].Point[c] {
							t.Fatalf("query %d neighbor %d: points differ after permutation", qi, j)
						}
					}
				}
			}
		})
	}
}

func TestMetamorphicDuplicateInsertion(t *testing.T) {
	const dim, disks, n, k = 4, 3, 500, 6
	for _, rv := range replicationVariants {
		t.Run(rv.name, func(t *testing.T) {
			pts := uniformPoints(n, dim, 63)
			doubled := append(append([][]float64{}, pts...), pts...)
			opts := Options{Dim: dim, Disks: disks, Replication: rv.value}
			single := buildFrom(t, opts, pts)
			dup := buildFrom(t, opts, doubled)

			for qi, q := range data.Uniform(5, dim, 64) {
				a, _, err := single.KNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := dup.KNN(q, 2*k)
				if err != nil {
					t.Fatal(err)
				}
				if len(b) != 2*k {
					t.Fatalf("query %d: %d neighbors from doubled index, want %d", qi, len(b), 2*k)
				}
				// Every distance of the k nearest appears exactly twice
				// in the 2k nearest of the doubled set.
				for j := 0; j < k; j++ {
					if b[2*j].Dist != a[j].Dist || b[2*j+1].Dist != a[j].Dist {
						t.Fatalf("query %d: dists %v/%v at doubled rank %d, want %v twice",
							qi, b[2*j].Dist, b[2*j+1].Dist, j, a[j].Dist)
					}
				}
			}
		})
	}
}

func TestMetamorphicDiskCountInvariance(t *testing.T) {
	const dim, n, k = 5, 700, 7
	for _, rv := range replicationVariants {
		t.Run(rv.name, func(t *testing.T) {
			pts := uniformPoints(n, dim, 65)
			diskCounts := []int{2, 3, 5, 8, 16}
			queries := data.Uniform(5, dim, 66)

			type answer struct {
				id   int
				dist float64
			}
			var want [][]answer
			for ci, disks := range diskCounts {
				ix := buildFrom(t, Options{Dim: dim, Disks: disks, Replication: rv.value}, pts)
				for qi, q := range queries {
					res, _, err := ix.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got := make([]answer, len(res))
					for j, nb := range res {
						got[j] = answer{nb.ID, nb.Dist}
					}
					if ci == 0 {
						want = append(want, got)
						continue
					}
					// IDs are input positions, independent of the
					// layout — ties break by ID, so equality is exact.
					for j := range got {
						if got[j] != want[qi][j] {
							t.Fatalf("disks=%d query %d neighbor %d: %+v, want %+v (from disks=%d)",
								disks, qi, j, got[j], want[qi][j], diskCounts[0])
						}
					}
				}
			}
		})
	}
}

// TestMetamorphicIncrementalEqualsRebuild is the live-mutation
// relation: Build(A) + InsertBatch(B) + incremental Reorganize must be
// indistinguishable from Build(A ∪ B) — same IDs, same answers (byte
// for byte), clean integrity, and disk loads within the incremental
// balance threshold of the from-scratch build. It runs across
// declustering strategies (including round-robin, whose reorganize is
// the full-rebuild fallback), replication variants, and the
// packed/quantized storage engine.
func TestMetamorphicIncrementalEqualsRebuild(t *testing.T) {
	const dim, disks = 4, 6
	nA, nB := 500, 400
	if testing.Short() {
		nA, nB = 250, 200
	}
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"base", func(o *Options) {}},
		{"quantile", func(o *Options) { o.QuantileSplits = true }},
		{"packed-quantize", func(o *Options) { o.Packed = true; o.Quantize = true }},
	}
	for _, kind := range []Kind{NearOptimal, Hilbert, RoundRobin} {
		for _, rv := range replicationVariants {
			for _, v := range variants {
				t.Run(fmt.Sprintf("%s/%s/%s", kind, rv.name, v.name), func(t *testing.T) {
					// Small pages so the overload check (slack: one
					// leaf's capacity) bites at this workload size.
					opts := Options{Dim: dim, Disks: disks, Kind: kind,
						Replication: rv.value, PageSize: 256}
					v.mod(&opts)

					a := uniformPoints(nA, dim, 71)
					b := uniformPoints(nB, dim, 72)
					for _, p := range b {
						for j := range p {
							p[j] *= 0.2 // clustered: forces real splits
						}
					}

					incr := buildFrom(t, opts, a)
					ids, err := incr.InsertBatch(b)
					if err != nil {
						t.Fatal(err)
					}
					for i, id := range ids {
						if id != nA+i {
							t.Fatalf("batch id %d is %d, want %d", i, id, nA+i)
						}
					}
					stats, err := incr.ReorganizeStats()
					if err != nil {
						t.Fatal(err)
					}
					if kind == RoundRobin {
						if stats.Steps > 0 && !stats.Rebuilt {
							t.Fatalf("round-robin reorganize must be the rebuild fallback, got %+v", stats)
						}
					} else if stats.Rebuilt {
						t.Fatalf("bucketed layout fell back to a full rebuild: %+v", stats)
					}

					ref := buildFrom(t, opts, append(append([][]float64{}, a...), b...))

					for _, ix := range []*Index{incr, ref} {
						if err := ix.CheckIntegrity(); err != nil {
							t.Fatal(err)
						}
					}
					rng := rand.New(rand.NewSource(73))
					for qi := 0; qi < 8; qi++ {
						q := make([]float64, dim)
						for j := range q {
							q[j] = rng.Float64()
						}
						k := 1 + rng.Intn(9)
						got, _, err := incr.KNN(q, k)
						if err != nil {
							t.Fatal(err)
						}
						want, _, err := ref.KNN(q, k)
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("query %d: %d neighbors vs %d from rebuild", qi, len(got), len(want))
						}
						for j := range got {
							if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
								t.Fatalf("query %d neighbor %d: (id %d, %v) vs rebuild (id %d, %v)",
									qi, j, got[j].ID, got[j].Dist, want[j].ID, want[j].Dist)
							}
						}
					}

					// Balance: the incremental result must be within the
					// reorganizer's own stop threshold, or no worse than
					// what a from-scratch build produces on this data.
					maxIncr := maxOf(incr.DiskLoads())
					maxRef := maxOf(ref.DiskLoads())
					ideal := float64(nA+nB) / float64(disks)
					slack := float64(incr.treeConfig().LeafCapacity)
					if float64(maxIncr) > 2*ideal+slack && maxIncr > maxRef {
						t.Fatalf("incremental max load %d exceeds threshold %v and rebuild's %d",
							maxIncr, 2*ideal+slack, maxRef)
					}
				})
			}
		}
	}
}

// TestMetamorphicApproxZeroIsExact is the approximate tier's
// metamorphic anchor: on an LSH-equipped index, ε=0 / recall_target=1
// is byte-identical to plain KNN — which the relations above pin to
// the linear scan — for any disk count, replication setting, and the
// batch path. Composed with TestMetamorphicDiskCountInvariance this
// makes the zero-knob approximate path layout-invariant too.
func TestMetamorphicApproxZeroIsExact(t *testing.T) {
	const dim, n, k = 5, 700, 7
	zero := Approx{Epsilon: 0, RecallTarget: 1}
	for _, rv := range replicationVariants {
		t.Run(rv.name, func(t *testing.T) {
			pts := uniformPoints(n, dim, 81)
			queries := data.Uniform(5, dim, 82)
			for _, disks := range []int{2, 5, 16} {
				ix := buildFrom(t, Options{Dim: dim, Disks: disks,
					Replication: rv.value, LSH: true}, pts)
				for qi, q := range queries {
					want, _, err := ix.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, stats, err := ix.KNNApprox(q, k, zero)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("disks=%d query %d: zero-knob approx differs from exact", disks, qi)
					}
					if stats.PagesSkippedApprox != 0 || stats.ProbePages != 0 || stats.EffectiveEpsilon != 0 {
						t.Fatalf("disks=%d query %d: zero-knob approx reported activity: %+v",
							disks, qi, stats)
					}
				}
				wantB, _, err := ix.BatchKNN(queries, k)
				if err != nil {
					t.Fatal(err)
				}
				gotB, bs, err := ix.BatchKNNApprox(queries, k, zero)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotB, wantB) {
					t.Fatalf("disks=%d: zero-knob batch differs from exact batch", disks)
				}
				if bs.PagesSkippedApprox != 0 || bs.ProbePages != 0 {
					t.Fatalf("disks=%d: zero-knob batch reported approx activity: %+v", disks, bs)
				}
			}
		})
	}
}

func TestMetamorphicBruteForceEquality(t *testing.T) {
	const dim, disks, n = 6, 4, 400
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range replicationVariants {
		for _, k := range []int{1, 5, n} {
			t.Run(fmt.Sprintf("%s/k=%d", rv.name, k), func(t *testing.T) {
				pts := uniformPoints(n, dim, 67)
				truth := make(map[int][]float64, n)
				for id, p := range pts {
					truth[id] = p
				}
				ix := buildFrom(t, Options{Dim: dim, Disks: disks, Replication: rv.value}, pts)
				for qi, q := range data.Uniform(4, dim, 68) {
					got, _, err := ix.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					want := linearScanKNN(truth, q, k, m)
					if len(got) != len(want) {
						t.Fatalf("query %d: %d neighbors, want %d", qi, len(got), len(want))
					}
					for j := range got {
						if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
							t.Fatalf("query %d neighbor %d: (id %d, %v), want (id %d, %v)",
								qi, j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
						}
					}
				}
			})
		}
	}
}
