package server

import (
	"context"
	"errors"
	"sync"
)

// Admission control: every query request must win an in-flight slot
// before it touches the engine. MaxInFlight slots bound the concurrent
// engine work; up to MaxQueue requests may wait for a slot, each until
// its own context deadline. A request arriving with the queue at
// capacity is rejected immediately (HTTP 429) — the server sheds load
// instead of accumulating an unbounded backlog; a request arriving
// while the server drains is rejected with errDraining (HTTP 503).
//
// The drain handshake (see Server.Shutdown) is the usual
// flag-then-wait two-step: requests register in the in-flight
// WaitGroup under the same mutex Shutdown uses to flip the draining
// flag, so Shutdown's Wait observes every admitted request and no
// request slips in after the flag is up.

var (
	// errQueueFull rejects a request when the wait queue is at
	// capacity (mapped to HTTP 429).
	errQueueFull = errors.New("server: admission queue is full")
	// errDraining rejects a request during graceful shutdown (mapped
	// to HTTP 503).
	errDraining = errors.New("server: draining")
)

// admission is the slot semaphore plus the bounded wait queue.
type admission struct {
	slots chan struct{} // buffered MaxInFlight: a token in the channel is a held slot
	queue chan struct{} // buffered MaxQueue: a token is a waiting request
	drain chan struct{} // closed when the server starts draining
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
		drain: make(chan struct{}),
	}
}

// acquire wins an in-flight slot, waiting in the bounded queue if
// necessary. It fails fast with errQueueFull when the queue is at
// capacity, errDraining when the server drains before a slot frees,
// and ctx.Err() when the request's own deadline expires first.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case <-a.drain:
		return errDraining
	default:
	}
	// Fast path: a slot is free.
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// Slow path: join the bounded queue (or bounce).
	select {
	case a.queue <- struct{}{}:
	default:
		return errQueueFull
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-a.drain:
		return errDraining
	}
}

// release frees the slot of a finished request.
func (a *admission) release() { <-a.slots }

// inFlight returns the number of held slots and waiting requests
// (advisory; the values race with concurrent requests).
func (a *admission) inFlight() (slots, queued int) {
	return len(a.slots), len(a.queue)
}

// drainGate serializes the draining flag against in-flight
// registration; see the package comment on the handshake.
type drainGate struct {
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// enter registers one admitted request; it fails when the server is
// already draining (the caller releases its admission slot and answers
// 503).
func (g *drainGate) enter() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return errDraining
	}
	g.inflight.Add(1)
	return nil
}

// exit deregisters a finished request.
func (g *drainGate) exit() { g.inflight.Done() }

// close flips the draining flag; it reports whether this call was the
// one that flipped it.
func (g *drainGate) close() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.draining = true
	return true
}

// isDraining reports the flag.
func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// wait blocks until every registered request has exited or ctx
// expires.
func (g *drainGate) wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
