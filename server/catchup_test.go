package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"parsearch"
	"parsearch/client"
	"parsearch/internal/wire"
)

// TestCatchupEndToEnd is the acceptance test for snapshot+delta
// shipping: a cold replica directory is caught up from a live leader
// over HTTP, opened with the standard recovery path, and serves
// byte-identical answers.
func TestCatchupEndToEnd(t *testing.T) {
	const dim, disks = 4, 6
	leader, err := parsearch.Open(parsearch.Options{
		Dim: dim, Disks: disks, Durable: true, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i := 0; i < 40; i++ {
		if _, err := leader.Insert(randQuery(dim, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 70; i++ {
		if _, err := leader.Insert(randQuery(dim, i)); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := New(leader, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	replica := filepath.Join(t.TempDir(), "replica")
	shipped, err := cl.CatchupDir(context.Background(), replica)
	if err != nil {
		t.Fatal(err)
	}
	if shipped == 0 {
		t.Fatal("cold catch-up shipped zero bytes")
	}

	follower, err := parsearch.Open(parsearch.Options{
		Dim: dim, Disks: disks, Durable: true, Dir: replica,
	})
	if err != nil {
		t.Fatalf("opening caught-up replica: %v", err)
	}
	defer follower.Close()
	if follower.Len() != leader.Len() {
		t.Fatalf("replica has %d points, leader %d", follower.Len(), leader.Len())
	}
	for qi := 0; qi < 10; qi++ {
		q := randQuery(dim, 500+qi)
		got, _, err := follower.KNN(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := leader.KNN(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		if asJSON(t, got) != asJSON(t, want) {
			t.Fatalf("query %d: replica answer differs from leader", qi)
		}
	}
	if err := follower.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	// A follow-up round against the unchanged leader ships nothing.
	shipped, err = cl.CatchupDir(context.Background(), replica)
	if err != nil {
		t.Fatal(err)
	}
	if shipped != 0 {
		t.Fatalf("steady-state catch-up shipped %d bytes", shipped)
	}
}

// TestCatchupNonDurableIsBadRequest pins the error mapping: asking a
// memory-only server for its log chain is a client error, not a 500.
func TestCatchupNonDurableIsBadRequest(t *testing.T) {
	ix := testIndex(t, 3, 50, 4, 0)
	srv, err := New(ix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, err = client.New(ts.URL).Catchup(context.Background(), false, 0, 0)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != wire.CodeBadRequest {
		t.Fatalf("catch-up from non-durable server: %v, want code %q", err, wire.CodeBadRequest)
	}
}
