package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parsearch/client"
)

// newLocalServer mounts the server on an httptest listener torn down
// with the test, returning its base URL.
func newLocalServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func errForLen(got, want int) error {
	return fmt.Errorf("got %d neighbors, want %d", got, want)
}

// TestCoalescingProperty is the satellite property test of the
// coalescer: N concurrent same-k requests produce results
// byte-identical to N independent KNN calls, every request is answered
// through a coalesced batch, and no batch ever exceeds the configured
// MaxBatch. The tight MaxBatch forces the size-triggered flush path
// (detach-by-filling-request) as well as the timer path.
func TestCoalescingProperty(t *testing.T) {
	const (
		dim      = 6
		k        = 8
		requests = 48
		maxBatch = 4
	)
	ix := testIndex(t, dim, 1500, 8, 0)
	srv, err := New(ix, Config{CoalesceWindow: 10 * time.Millisecond, MaxBatch: maxBatch})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLocalServer(t, srv)
	cl := client.New(ts)

	// Ground truth: N independent library calls.
	want := make([]string, requests)
	for i := range want {
		ns, _, err := ix.KNN(randQuery(dim, i), k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(ns)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(b)
	}

	var wg sync.WaitGroup
	got := make([]string, requests)
	errs := make([]error, requests)
	start := make(chan struct{})
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			ns, err := cl.KNN(context.Background(), randQuery(dim, i), k)
			if err != nil {
				errs[i] = err
				return
			}
			b, _ := json.Marshal(ns)
			got[i] = string(b)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range got {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("request %d: coalesced result differs from independent KNN\ngot:  %.120s\nwant: %.120s",
				i, got[i], want[i])
		}
	}

	st := srv.Stats()
	if st.CoalescedQueries != requests {
		t.Errorf("CoalescedQueries = %d, want %d (every request must go through the coalescer)",
			st.CoalescedQueries, requests)
	}
	if st.MaxCoalescedBatch > maxBatch {
		t.Errorf("MaxCoalescedBatch = %d exceeds MaxBatch %d", st.MaxCoalescedBatch, maxBatch)
	}
	if st.CoalescedBatches >= requests {
		t.Errorf("CoalescedBatches = %d for %d requests: no coalescing happened",
			st.CoalescedBatches, requests)
	}
	// Conservation: the batches partition the requests exactly.
	minBatches := int64(requests / maxBatch)
	if st.CoalescedBatches < minBatches {
		t.Errorf("CoalescedBatches = %d below floor %d: some batch exceeded MaxBatch",
			st.CoalescedBatches, minBatches)
	}
}

// TestCoalescerMixedK pins the grouping key: concurrent requests with
// different k never share a batch (a batch has one k), yet all answer
// correctly.
func TestCoalescerMixedK(t *testing.T) {
	const dim = 6
	ix := testIndex(t, dim, 1000, 8, 0)
	srv, err := New(ix, Config{CoalesceWindow: 10 * time.Millisecond, MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLocalServer(t, srv)
	cl := client.New(ts)

	var wg sync.WaitGroup
	errs := make([]error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 1 + i%3 // three distinct ks
			ns, err := cl.KNN(context.Background(), randQuery(dim, i), k)
			if err == nil && len(ns) != k {
				err = errForLen(len(ns), k)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if st := srv.Stats(); st.CoalescedBatches < 3 {
		t.Errorf("CoalescedBatches = %d, want >= 3 (one per distinct k)", st.CoalescedBatches)
	}
}

// TestCoalescerRequesterTimeout pins the detach semantics: a waiter
// whose context expires mid-window gets its deadline error while the
// batch still answers the other waiters.
func TestCoalescerRequesterTimeout(t *testing.T) {
	const dim = 6
	ix := testIndex(t, dim, 800, 8, 0)
	srv, err := New(ix, Config{CoalesceWindow: 200 * time.Millisecond, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLocalServer(t, srv)
	impatient := client.New(ts, client.WithMaxRetries(1), client.WithTimeout(20*time.Millisecond))
	patient := client.New(ts)

	var wg sync.WaitGroup
	var patientErr, impatientErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, patientErr = patient.KNN(context.Background(), randQuery(dim, 0), 5)
	}()
	go func() {
		defer wg.Done()
		_, impatientErr = impatient.KNN(context.Background(), randQuery(dim, 1), 5)
	}()
	wg.Wait()

	if patientErr != nil {
		t.Errorf("patient waiter: %v", patientErr)
	}
	if impatientErr == nil {
		t.Error("impatient waiter: expected a deadline error")
	}
}
