package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parsearch"
	"parsearch/client"
)

// testIndex builds a populated index for serving tests.
func testIndex(t testing.TB, dim, n, disks, replication int) *parsearch.Index {
	t.Helper()
	ix, err := parsearch.Open(parsearch.Options{Dim: dim, Disks: disks, Replication: replication})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	return ix
}

// randQuery returns a deterministic query vector for index i.
func randQuery(dim int, i int) []float64 {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	q := make([]float64, dim)
	for j := range q {
		q[j] = rng.Float64()
	}
	return q
}

// asJSON pins byte-identity between served and direct results.
func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeEndToEnd is the acceptance test of the serving subsystem: a
// 16-disk index behind an httptest listener, 64 concurrent mixed
// KNN/range requests through the typed client, results byte-identical
// to direct library calls, and coalescing observably merging traffic.
func TestServeEndToEnd(t *testing.T) {
	const (
		dim      = 8
		n        = 2000
		disks    = 16
		k        = 10
		requests = 64
	)
	ix := testIndex(t, dim, n, disks, 0)
	srv, err := New(ix, Config{CoalesceWindow: 20 * time.Millisecond, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	// Direct library answers first: the ground truth every served
	// response must match byte for byte.
	type want struct{ res string }
	wants := make([]want, requests)
	for i := range wants {
		if i%2 == 0 {
			q := randQuery(dim, i)
			ns, _, err := ix.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			wants[i] = want{asJSON(t, ns)}
		} else {
			min, max := rangeBox(dim, i)
			ns, _, err := ix.RangeQuery(min, max)
			if err != nil {
				t.Fatal(err)
			}
			wants[i] = want{asJSON(t, ns)}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, requests)
	got := make([]string, requests)
	start := make(chan struct{})
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			var ns []parsearch.Neighbor
			var err error
			if i%2 == 0 {
				ns, err = cl.KNN(context.Background(), randQuery(dim, i), k)
			} else {
				min, max := rangeBox(dim, i)
				ns, err = cl.Range(context.Background(), min, max)
			}
			if err != nil {
				errs[i] = err
				return
			}
			b, err := json.Marshal(ns)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = string(b)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got[i] != wants[i].res {
			t.Errorf("request %d: served result differs from direct library call\nserved: %.120s\ndirect: %.120s",
				i, got[i], wants[i].res)
		}
	}

	st := srv.Stats()
	if st.CoalescedQueries != requests/2 {
		t.Errorf("CoalescedQueries = %d, want %d", st.CoalescedQueries, requests/2)
	}
	if st.CoalescedBatches >= st.CoalescedQueries {
		t.Errorf("no coalescing: %d batches for %d queries", st.CoalescedBatches, st.CoalescedQueries)
	}
	if st.MaxCoalescedBatch > 16 {
		t.Errorf("MaxCoalescedBatch = %d exceeds configured MaxBatch 16", st.MaxCoalescedBatch)
	}
	if st.Requests != requests {
		t.Errorf("Requests = %d, want %d", st.Requests, requests)
	}
}

// rangeBox returns a deterministic query box for index i.
func rangeBox(dim, i int) (min, max []float64) {
	rng := rand.New(rand.NewSource(int64(5000 + i)))
	min = make([]float64, dim)
	max = make([]float64, dim)
	for j := range min {
		lo := rng.Float64() * 0.6
		min[j] = lo
		max[j] = lo + 0.35
	}
	return min, max
}

// TestShutdownDrains pins the graceful-drain contract: requests in
// flight when Shutdown begins all complete successfully, requests
// arriving during the drain are rejected with 503/draining, and
// Shutdown returns once the in-flight set is empty.
func TestShutdownDrains(t *testing.T) {
	const (
		dim      = 6
		inflight = 12
	)
	ix := testIndex(t, dim, 1200, 8, 0)
	// A long coalescing window holds the in-flight requests open well
	// past the Shutdown call without any timing heroics.
	srv, err := New(ix, Config{CoalesceWindow: 300 * time.Millisecond, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.WithMaxRetries(1))

	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.KNN(context.Background(), randQuery(dim, i), 5)
		}(i)
	}
	// Wait until every request is admitted and parked in the window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := srv.Stats(); st.InFlight >= inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never became in-flight: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to flip the gate, then verify new
	// requests bounce with the draining code while the old ones drain.
	for !srv.Stats().Draining {
		time.Sleep(time.Millisecond)
	}
	_, err = cl.KNN(context.Background(), randQuery(dim, 999), 5)
	if !errors.Is(err, parsearch.ErrUnavailable) {
		t.Errorf("request during drain: err = %v, want ErrUnavailable", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Errorf("request during drain: %v, want http 503", err)
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d failed during drain: %v", i, err)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if st := srv.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight = %d after drain", st.InFlight)
	}
	// Idempotent: a second Shutdown returns immediately.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestQueueOverflow429 pins the load-shedding contract: with one
// in-flight slot and a one-deep queue, a third concurrent request is
// answered 429 — a well-formed HTTP rejection, never a dropped
// connection — and is not retried by the default client policy.
func TestQueueOverflow429(t *testing.T) {
	const dim = 6
	ix := testIndex(t, dim, 800, 8, 0)
	// The long window parks the first request in flight; coalescing is
	// confined to it by keying on k, so requests with different k stack
	// up behind the single slot.
	srv, err := New(ix, Config{
		CoalesceWindow: 400 * time.Millisecond,
		MaxBatch:       64,
		MaxInFlight:    1,
		MaxQueue:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	results := make(chan error, 2)
	go func() {
		_, err := cl.KNN(context.Background(), randQuery(dim, 0), 3)
		results <- err
	}()
	waitFor(t, func() bool { return srv.Stats().InFlight == 1 })

	go func() {
		_, err := cl.KNN(context.Background(), randQuery(dim, 1), 4)
		results <- err
	}()
	waitFor(t, func() bool { return srv.Stats().Queued == 1 })

	// Queue full: this one must bounce with 429 immediately.
	_, err = cl.KNN(context.Background(), randQuery(dim, 2), 5)
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("overflow request: err = %v, want APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests || ae.Code != "queue_full" {
		t.Errorf("overflow request: status %d code %s, want 429 queue_full", ae.Status, ae.Code)
	}

	// The parked requests complete once their windows flush.
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("parked request %d: %v", i, err)
		}
	}
	if st := srv.Stats(); st.RejectedQueueFull != 1 {
		t.Errorf("RejectedQueueFull = %d, want 1", st.RejectedQueueFull)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPartialMatchAndBatchEndToEnd covers the two remaining endpoints
// against direct library calls, including the NaN→null wildcard
// transport.
func TestPartialMatchAndBatchEndToEnd(t *testing.T) {
	const dim = 5
	ix := testIndex(t, dim, 1500, 8, 0)
	srv, err := New(ix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	spec := []float64{0.5, parsearch.Wildcard, 0.5, parsearch.Wildcard, parsearch.Wildcard}
	direct, _, err := ix.PartialMatch(spec, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	served, err := cl.PartialMatch(context.Background(), spec, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Partial-match distances are NaN by design (distance to a box
	// center with wildcard dimensions), so compare NaN-aware instead of
	// through JSON.
	if len(direct) == 0 || len(direct) != len(served) {
		t.Fatalf("partial match: %d served, %d direct", len(served), len(direct))
	}
	for i := range direct {
		d, s := direct[i], served[i]
		if d.ID != s.ID || asJSON(t, d.Point) != asJSON(t, s.Point) ||
			(d.Dist != s.Dist && !(math.IsNaN(d.Dist) && math.IsNaN(s.Dist))) {
			t.Fatalf("partial match %d: served %+v, direct %+v", i, s, d)
		}
	}

	queries := make([][]float64, 9)
	for i := range queries {
		queries[i] = randQuery(dim, 100+i)
	}
	directBatch, _, err := ix.BatchKNN(queries, 7)
	if err != nil {
		t.Fatal(err)
	}
	servedBatch, err := cl.BatchKNN(context.Background(), queries, 7)
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, directBatch) != asJSON(t, servedBatch) {
		t.Error("batch served result differs from direct call")
	}
}

// TestBadRequests pins the 400 mapping of the validating decoder for
// every endpoint: no body shape may panic the server or reach the
// engine.
func TestBadRequests(t *testing.T) {
	ix := testIndex(t, 4, 200, 4, 0)
	srv, err := New(ix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct{ path, body string }{
		{"/v1/knn", `{"query":[0.1,0.2],"k":5}`},         // wrong dim
		{"/v1/knn", `{"query":[0.1,0.2,0.3,0.4],"k":0}`}, // bad k
		{"/v1/knn", `{"query":[1e999,0,0,0],"k":1}`},     // Inf
		{"/v1/knn", `{`}, // malformed
		{"/v1/range", `{"min":[1,0,0,0],"max":[0,1,1,1]}`}, // inverted
		{"/v1/partialmatch", `{"spec":[null,null,null,null],"eps":0.1}`},
		{"/v1/batch", `{"queries":[],"k":2}`},
		// Approximate-tier knobs out of range.
		{"/v1/knn", `{"query":[0.1,0.2,0.3,0.4],"k":1,"epsilon":-0.5}`},
		{"/v1/knn", `{"query":[0.1,0.2,0.3,0.4],"k":1,"epsilon":1e7}`},
		{"/v1/knn", `{"query":[0.1,0.2,0.3,0.4],"k":1,"epsilon":1e999}`},
		{"/v1/knn", `{"query":[0.1,0.2,0.3,0.4],"k":1,"recall_target":1.5}`},
		{"/v1/batch", `{"queries":[[0.1,0.2,0.3,0.4]],"k":1,"recall_target":-1}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("POST %s: %v", c.path, err)
		}
		var er struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Errorf("POST %s %q: undecodable error body: %v", c.path, c.body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || er.Code != "bad_request" {
			t.Errorf("POST %s %q: status %d code %s, want 400 bad_request",
				c.path, c.body, resp.StatusCode, er.Code)
		}
	}
}

// TestServedApproxKnobs drives the approximate-tier knobs through the
// full serving path: explicit exact knobs (ε=0, recall_target=1) must
// round-trip byte-identically to a direct library call even through
// the coalescer, and engaged knobs must serve full-length result sets.
func TestServedApproxKnobs(t *testing.T) {
	ix := testIndex(t, 4, 800, 4, 0)
	srv, err := New(ix, Config{CoalesceWindow: 5 * time.Millisecond, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	q := randQuery(4, 55)
	direct, _, err := ix.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	served, err := cl.KNNApprox(ctx, q, 5, parsearch.Approx{Epsilon: 0, RecallTarget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, served) != asJSON(t, direct) {
		t.Error("served exact-knob result differs from direct call")
	}

	loose, err := cl.KNNApprox(ctx, q, 5, parsearch.Approx{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) != 5 {
		t.Errorf("served ε=0.5 returned %d neighbors, want 5", len(loose))
	}

	batch, err := cl.BatchKNNApprox(ctx, [][]float64{q, randQuery(4, 56)}, 3,
		parsearch.Approx{Epsilon: 0.2, RecallTarget: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || len(batch[0]) != 3 || len(batch[1]) != 3 {
		t.Errorf("served approx batch shape %d items, want 2×3", len(batch))
	}
}

// TestObservabilitySurfacesApproxCounters pins the observability
// contract of the approximate tier: after a served KNNApprox request,
// both /varz (the expvar dump of the index registry) and /statusz (the
// embedded metrics snapshot) must report the approx_queries and
// pages_skipped_approx counters — a cluster operator tuning the
// recall/latency trade-off reads these, not the library's QueryStats.
func TestObservabilitySurfacesApproxCounters(t *testing.T) {
	ix := testIndex(t, 4, 800, 4, 0)
	srv, err := New(ix, Config{DisableCoalescing: true, ExpvarName: "parsearch_approx_obs_test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	if _, err := cl.KNNApprox(context.Background(), randQuery(4, 77), 5, parsearch.Approx{Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}

	// /varz: the expvar dump holds the registry under the published
	// name; the tier counters must be present and the query counted.
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var varz map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&varz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	reg, ok := varz["parsearch_approx_obs_test"]
	if !ok {
		t.Fatal("/varz does not publish the index registry")
	}
	var counters struct {
		ApproxQueries      *int64 `json:"approx_queries"`
		PagesSkippedApprox *int64 `json:"pages_skipped_approx"`
	}
	if err := json.Unmarshal(reg, &counters); err != nil {
		t.Fatal(err)
	}
	if counters.ApproxQueries == nil || counters.PagesSkippedApprox == nil {
		t.Fatalf("/varz registry lacks approx tier counters: %s", reg)
	}
	if *counters.ApproxQueries < 1 {
		t.Errorf("/varz approx_queries = %d after a served KNNApprox, want >= 1", *counters.ApproxQueries)
	}
	if *counters.PagesSkippedApprox < 0 {
		t.Errorf("/varz pages_skipped_approx = %d, want >= 0", *counters.PagesSkippedApprox)
	}

	// /statusz embeds the same snapshot under "metrics".
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"approx_queries", "pages_skipped_approx"} {
		if _, ok := doc.Metrics[key]; !ok {
			t.Errorf("/statusz metrics lack %q", key)
		}
	}
	var served int64
	if err := json.Unmarshal(doc.Metrics["approx_queries"], &served); err != nil || served < 1 {
		t.Errorf("/statusz approx_queries = %d (%v), want >= 1", served, err)
	}
}

// TestHealthzReflectsFaults walks healthz through the fault states:
// all-live, failed-but-replicated (200, rerouted), failed-unreachable
// (503, degraded).
func TestHealthzReflectsFaults(t *testing.T) {
	ix := testIndex(t, 4, 600, 4, 1)
	srv, err := New(ix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	check := func(wantStatus int, wantState string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus || h.Status != wantState {
			t.Errorf("healthz: %d %q, want %d %q", resp.StatusCode, h.Status, wantStatus, wantState)
		}
	}

	check(http.StatusOK, "ok")
	if err := ix.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	check(http.StatusOK, "rerouted")
	// Failing the replica of disk 1 makes its data unreachable.
	if err := ix.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	check(http.StatusServiceUnavailable, "degraded")
}

// TestStatusz sanity-checks the status document: index geometry,
// serving knobs, and a metrics snapshot that counts served queries.
func TestStatusz(t *testing.T) {
	ix := testIndex(t, 4, 400, 4, 0)
	srv, err := New(ix, Config{DisableCoalescing: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	if _, err := cl.KNN(context.Background(), randQuery(4, 0), 3); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Index struct {
			Dim   int `json:"dim"`
			Disks int `json:"disks"`
		} `json:"index"`
		Serving struct {
			MaxInFlight int `json:"max_in_flight"`
			Stats       struct {
				Requests int64 `json:"requests"`
			} `json:"stats"`
		} `json:"serving"`
		Metrics struct {
			QueriesKNN int64 `json:"queries_knn"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Index.Dim != 4 || doc.Index.Disks != 4 {
		t.Errorf("statusz index geometry %+v", doc.Index)
	}
	if doc.Serving.MaxInFlight != 64 {
		t.Errorf("statusz MaxInFlight = %d, want default 64", doc.Serving.MaxInFlight)
	}
	if doc.Serving.Stats.Requests != 1 {
		t.Errorf("statusz served requests = %d, want 1", doc.Serving.Stats.Requests)
	}
	if doc.Metrics.QueriesKNN < 1 {
		t.Errorf("statusz metrics queries_knn = %d, want >= 1", doc.Metrics.QueriesKNN)
	}
}

// TestHealthzDurability pins the durability block of /healthz and
// /statusz: absent for an in-memory index, present with WAL state and
// the recovery summary for a durable one.
func TestHealthzDurability(t *testing.T) {
	plain := testIndex(t, 4, 100, 4, 0)
	srv, err := New(plain, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var h struct {
		Durability *json.RawMessage `json:"durability"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Durability != nil {
		t.Fatal("in-memory index reports a durability block")
	}

	dir := t.TempDir()
	dix, err := parsearch.Open(parsearch.Options{Dim: 4, Disks: 4, Durable: true, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dix.Insert([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	dsrv, err := New(dix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dts := httptest.NewServer(dsrv.Handler())
	defer dts.Close()
	var dh struct {
		Durability *struct {
			Generation  uint64 `json:"generation"`
			SyncPolicy  string `json:"sync_policy"`
			WALLagBytes int64  `json:"wal_lag_bytes"`
		} `json:"durability"`
	}
	resp, err = http.Get(dts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dh); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dh.Durability == nil {
		t.Fatal("durable index reports no durability block on /healthz")
	}
	if dh.Durability.SyncPolicy != "always" {
		t.Errorf("sync policy = %q, want always", dh.Durability.SyncPolicy)
	}
	if dh.Durability.WALLagBytes != 0 {
		t.Errorf("WAL lag = %d under the always policy at rest", dh.Durability.WALLagBytes)
	}

	var doc struct {
		Durability *struct {
			Durable         bool  `json:"durable"`
			WALWrittenBytes int64 `json:"wal_written_bytes"`
		} `json:"durability"`
	}
	resp, err = http.Get(dts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Durability == nil || !doc.Durability.Durable {
		t.Fatal("durable index reports no durability on /statusz")
	}
	if doc.Durability.WALWrittenBytes == 0 {
		t.Error("statusz WAL written bytes = 0 after an insert")
	}
}

// TestDeadlinePropagation pins the 504 mapping: a client deadline that
// expires while the request is queued surfaces as a gateway timeout,
// not a hang or a 500.
func TestDeadlinePropagation(t *testing.T) {
	const dim = 4
	ix := testIndex(t, dim, 400, 4, 0)
	srv, err := New(ix, Config{
		CoalesceWindow: 400 * time.Millisecond,
		MaxInFlight:    1,
		MaxQueue:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.WithMaxRetries(1))

	blocker := make(chan error, 1)
	go func() {
		_, err := cl.KNN(context.Background(), randQuery(dim, 0), 3)
		blocker <- err
	}()
	waitFor(t, func() bool { return srv.Stats().InFlight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = cl.KNN(ctx, randQuery(dim, 1), 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued request past deadline: err = %v, want DeadlineExceeded", err)
	}
	if err := <-blocker; err != nil {
		t.Errorf("blocking request: %v", err)
	}
}

// TestServerValidation covers New's config validation.
func TestServerValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil index accepted")
	}
	ix := testIndex(t, 4, 100, 4, 0)
	if _, err := New(ix, Config{MaxBatch: 100, MaxBatchRequest: 10}); err == nil {
		t.Error("MaxBatch > MaxBatchRequest accepted")
	}
}

// ExampleServer shows mounting the serving API over a populated index.
func ExampleServer() {
	ix, _ := parsearch.Open(parsearch.Options{Dim: 2, Disks: 2})
	pts := [][]float64{{0.1, 0.1}, {0.2, 0.2}, {0.9, 0.9}, {0.15, 0.12}}
	_ = ix.Build(pts)
	srv, _ := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := client.New(ts.URL)
	ns, _ := cl.KNN(context.Background(), []float64{0.11, 0.11}, 1)
	fmt.Printf("nearest at distance %.2f\n", math.Round(ns[0].Dist*100)/100)
	// Output: nearest at distance 0.01
}
