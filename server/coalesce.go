package server

import (
	"context"
	"sync"
	"time"

	"parsearch"
)

// Request coalescing: concurrent single-query k-NN requests are
// grouped into one BatchKNN call, amortizing the per-query fan-out
// setup and letting the engine's worker pool and per-item shared
// bounds do the heavy lifting — the batching insight of online
// similarity serving (Teodoro et al.). A group collects requests with
// the same k for at most CoalesceWindow, or until MaxBatch requests
// have joined, whichever comes first; then one BatchKNN answers them
// all. Correctness is free: BatchKNN's per-item results are exactly
// KNN's (the equivalence battery pins this), so a coalesced request is
// indistinguishable from a direct one — the property test in
// coalesce_test.go asserts byte-identical results.
//
// State machine of one group (all transitions under coalescer.mu):
//
//	open ──(request joins, size < MaxBatch)──▶ open
//	open ──(size reaches MaxBatch)──────────▶ detached, flushed by the
//	                                           filling request's goroutine
//	open ──(window timer fires)─────────────▶ detached, flushed by the
//	                                           timer goroutine
//
// Once detached a group is immutable; late requests start a fresh
// group. Flushing runs outside the lock, so a slow batch never blocks
// new arrivals from grouping.

// coalesceResult is one waiter's share of a finished batch.
type coalesceResult struct {
	neighbors []parsearch.Neighbor
	stats     parsearch.QueryStats
	err       error
}

// groupKey identifies one coalescing group: only requests with the
// same k AND the same resolved approximate-tier knobs may share a
// batch (the knobs apply batch-wide, and mixing them would silently
// change a request's recall contract).
type groupKey struct {
	k            int
	epsilon      float64
	recallTarget float64
}

// group is one open coalescing window for a single groupKey.
type group struct {
	queries [][]float64
	waiters []chan coalesceResult
	timer   *time.Timer
}

// coalescer groups single-query KNN requests by k and approx knobs.
type coalescer struct {
	srv *Server
	// mu guards groups and every group's slices; flush detaches a
	// group under mu and runs the batch outside it.
	mu     sync.Mutex
	groups map[groupKey]*group
}

func newCoalescer(s *Server) *coalescer {
	return &coalescer{srv: s, groups: make(map[groupKey]*group)}
}

// submit enqueues one single-query KNN request and blocks until its
// group's batch finishes or ctx expires. The returned stats are the
// request's own per-query share of the batch (BatchStats.PerQuery).
func (c *coalescer) submit(ctx context.Context, q []float64, k int, a parsearch.Approx) coalesceResult {
	ch := make(chan coalesceResult, 1)
	key := groupKey{k: k, epsilon: a.Epsilon, recallTarget: a.RecallTarget}

	c.mu.Lock()
	g := c.groups[key]
	if g == nil {
		g = &group{}
		c.groups[key] = g
		// The window timer flushes the group even if no further
		// request joins; AfterFunc runs on its own goroutine, so a
		// full group flushed early just finds itself already detached.
		g.timer = time.AfterFunc(c.srv.cfg.CoalesceWindow, func() { c.flushTimed(key, g) })
	}
	g.queries = append(g.queries, q)
	g.waiters = append(g.waiters, ch)
	full := len(g.queries) >= c.srv.cfg.MaxBatch
	if full {
		// Detach: the filling request runs the batch itself.
		delete(c.groups, key)
		g.timer.Stop()
	}
	c.mu.Unlock()

	if full {
		c.run(g, key)
	}
	select {
	case r := <-ch:
		return r
	case <-ctx.Done():
		// The batch still completes for the other waiters; this
		// request's buffered slot absorbs its result.
		return coalesceResult{err: ctx.Err()}
	}
}

// flushTimed is the window-expiry path: detach the group if it is
// still open, then run it.
func (c *coalescer) flushTimed(key groupKey, g *group) {
	c.mu.Lock()
	if c.groups[key] != g {
		// Already detached by a filling request; that request runs it.
		c.mu.Unlock()
		return
	}
	delete(c.groups, key)
	c.mu.Unlock()
	c.run(g, key)
}

// run executes one detached group as a single BatchKNN call and fans
// the per-item results back out to the waiters. The batch runs under
// the server's batch context (carrying the configured tracer), not any
// single requester's: the group outlives each individual deadline, and
// in-flight groups must complete during drain.
func (c *coalescer) run(g *group, key groupKey) {
	s := c.srv
	s.stats.coalescedBatches.Add(1)
	s.stats.coalescedQueries.Add(int64(len(g.queries)))
	s.stats.maxCoalesced.max(int64(len(g.queries)))

	a := parsearch.Approx{Epsilon: key.epsilon, RecallTarget: key.recallTarget}
	results, bs, err := s.ix.BatchKNNApproxContext(s.batchCtx(), g.queries, key.k, a)
	for i, ch := range g.waiters {
		if err != nil {
			ch <- coalesceResult{err: err}
			continue
		}
		ch <- coalesceResult{neighbors: results[i], stats: bs.PerQuery[i]}
	}
}
