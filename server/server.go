// Package server exposes a parsearch.Index over HTTP/JSON — the
// query-serving subsystem of the engine. The daemon wrapping it is
// cmd/parsearchd; the typed client is package client.
//
// Endpoints:
//
//	POST /v1/knn          {"query":[...], "k":10}
//	POST /v1/range        {"min":[...], "max":[...]}
//	POST /v1/partialmatch {"spec":[0.5, null, ...], "eps":0.1}
//	POST /v1/batch        {"queries":[[...], ...], "k":10}
//	GET  /healthz         liveness + degraded/unreachable-disk state
//	GET  /varz            expvar dump (Index.PublishExpvar registry)
//	GET  /statusz         index config + serving stats + metrics snapshot
//
// The request pipeline layers three mechanisms over the engine:
//
//   - Coalescing: concurrent single-query /v1/knn requests with the
//     same k are merged into one BatchKNN call (see coalesce.go).
//   - Admission control: at most MaxInFlight requests touch the engine
//     concurrently; up to MaxQueue more wait, each bounded by its own
//     deadline. Beyond that the server answers 429 (see internal/admit).
//   - Graceful drain: Shutdown stops admitting (503), lets every
//     in-flight request — including pending coalescing windows —
//     complete, then returns. Zero requests are dropped mid-flight.
//
// Every request runs through the engine's *Context query variants, so
// deadlines propagate into the shard fan-out, the configured tracer
// sees every query, and the metrics registry counts network traffic
// exactly like library traffic.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"parsearch"
	"parsearch/internal/admit"
	"parsearch/internal/wire"
)

// Config are the serving knobs. The zero value selects the documented
// defaults.
type Config struct {
	// CoalesceWindow is how long an open coalescing group waits for
	// further same-k KNN requests before flushing; default 2ms.
	CoalesceWindow time.Duration
	// MaxBatch caps the size of one coalesced batch; default 16.
	MaxBatch int
	// DisableCoalescing routes every /v1/knn request directly to
	// KNNContext.
	DisableCoalescing bool
	// MaxInFlight is the number of requests allowed to use the engine
	// concurrently; default 64.
	MaxInFlight int
	// MaxQueue is the number of requests allowed to wait for an
	// in-flight slot; requests beyond it are answered 429. Default 128.
	MaxQueue int
	// DefaultTimeout is the per-request deadline applied when the
	// incoming request context carries none; default 10s. Expired
	// requests are answered 504.
	DefaultTimeout time.Duration
	// MaxBatchRequest caps the query count of one /v1/batch body;
	// default 1024.
	MaxBatchRequest int
	// MaxBodyBytes caps a request body; default 8 MiB.
	MaxBodyBytes int64
	// Tracer, when non-nil, receives the engine's span events for
	// every served query (attached via parsearch.WithTracer).
	Tracer parsearch.Tracer
	// ExpvarName publishes the index metrics under this expvar name
	// ("" skips publishing; /varz then still dumps whatever is
	// published process-wide). Publishing an already-taken name is not
	// an error — the first publisher wins, matching PublishExpvar's
	// global-registry semantics.
	ExpvarName string
}

// withDefaults fills the zero knobs.
func (c Config) withDefaults() Config {
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxBatchRequest <= 0 {
		c.MaxBatchRequest = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// maxInt64 is an atomic running maximum.
type maxInt64 struct{ v atomic.Int64 }

func (m *maxInt64) max(n int64) {
	for {
		cur := m.v.Load()
		if n <= cur || m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// serverStats are the serving-layer counters (the engine's own query
// metrics live in the index registry).
type serverStats struct {
	requests         atomic.Int64 // admitted query requests, by outcome below
	rejectedQueue    atomic.Int64 // 429: queue full
	rejectedDraining atomic.Int64 // 503: draining
	deadlineExpired  atomic.Int64 // 504: deadline hit in queue or in flight
	coalescedQueries atomic.Int64 // KNN requests answered via a coalesced batch
	coalescedBatches atomic.Int64 // BatchKNN calls the coalescer issued
	maxCoalesced     maxInt64     // largest coalesced batch observed
}

// Stats is a snapshot of the serving-layer counters.
type Stats struct {
	// Requests counts query requests admitted past admission control.
	Requests int64 `json:"requests"`
	// RejectedQueueFull counts 429s; RejectedDraining 503s issued
	// during drain; DeadlineExpired 504s.
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`
	DeadlineExpired   int64 `json:"deadline_expired"`
	// CoalescedQueries counts /v1/knn requests served through a
	// coalesced batch; CoalescedBatches the BatchKNN calls that served
	// them. CoalescedBatches < CoalescedQueries means coalescing is
	// actually merging traffic.
	CoalescedQueries int64 `json:"coalesced_queries"`
	CoalescedBatches int64 `json:"coalesced_batches"`
	// MaxCoalescedBatch is the largest coalesced batch observed; it
	// never exceeds Config.MaxBatch.
	MaxCoalescedBatch int64 `json:"max_coalesced_batch"`
	// InFlight and Queued are instantaneous gauges.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	// Draining reports an in-progress Shutdown.
	Draining bool `json:"draining"`
}

// Server serves one Index over HTTP. Create with New, mount
// Handler(), stop with Shutdown.
type Server struct {
	ix    *parsearch.Index
	cfg   Config
	adm   *admit.Admission
	gate  *admit.Gate
	coal  *coalescer
	mux   *http.ServeMux
	stats serverStats
}

// New returns a server over the index. The configuration is validated
// and defaulted; see Config.
func New(ix *parsearch.Index, cfg Config) (*Server, error) {
	if ix == nil {
		return nil, fmt.Errorf("server: nil index")
	}
	cfg = cfg.withDefaults()
	if cfg.MaxBatch > cfg.MaxBatchRequest {
		return nil, fmt.Errorf("server: MaxBatch %d exceeds MaxBatchRequest %d", cfg.MaxBatch, cfg.MaxBatchRequest)
	}
	s := &Server{
		ix:   ix,
		cfg:  cfg,
		adm:  admit.New(cfg.MaxInFlight, cfg.MaxQueue),
		gate: &admit.Gate{},
	}
	s.coal = newCoalescer(s)
	if cfg.ExpvarName != "" {
		// The expvar registry is global and permanent; a taken name
		// (say, a previous server over the same index) is fine — the
		// earlier publisher keeps serving its registry.
		_ = ix.PublishExpvar(cfg.ExpvarName)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/knn", s.handleKNN)
	mux.HandleFunc("POST /v1/range", s.handleRange)
	mux.HandleFunc("POST /v1/partialmatch", s.handlePartialMatch)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/catchup", s.handleCatchup)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /varz", expvar.Handler())
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the serving-layer counters.
func (s *Server) Stats() Stats {
	inflight, queued := s.adm.InFlight()
	return Stats{
		Requests:          s.stats.requests.Load(),
		RejectedQueueFull: s.stats.rejectedQueue.Load(),
		RejectedDraining:  s.stats.rejectedDraining.Load(),
		DeadlineExpired:   s.stats.deadlineExpired.Load(),
		CoalescedQueries:  s.stats.coalescedQueries.Load(),
		CoalescedBatches:  s.stats.coalescedBatches.Load(),
		MaxCoalescedBatch: s.stats.maxCoalesced.v.Load(),
		InFlight:          int64(inflight),
		Queued:            int64(queued),
		Draining:          s.gate.IsDraining(),
	}
}

// Shutdown drains the server: new requests are rejected with 503
// immediately, queued requests are woken and rejected, and Shutdown
// blocks until every in-flight request (including open coalescing
// windows) has completed or ctx expires. It is the SIGTERM path of
// cmd/parsearchd and is idempotent. The HTTP listener itself is the
// caller's to close afterwards (http.Server.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.gate.Close() {
		s.adm.CloseDrain()
	}
	return s.gate.Wait(ctx)
}

// batchCtx is the context coalesced batches run under: the server's
// tracer, no per-request deadline (the group must complete even during
// drain; see coalescer.run).
func (s *Server) batchCtx() context.Context {
	ctx := context.Background()
	if s.cfg.Tracer != nil {
		ctx = parsearch.WithTracer(ctx, s.cfg.Tracer)
	}
	return ctx
}

// reqCtx derives a query context from the request: the default
// deadline when the client brought none, plus the configured tracer.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if _, ok := ctx.Deadline(); !ok {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
	}
	if s.cfg.Tracer != nil {
		ctx = parsearch.WithTracer(ctx, s.cfg.Tracer)
	}
	return ctx, cancel
}

// enter runs admission control for one query request. On failure the
// rejection has already been written; callers must return. On success
// the caller must defer exit().
func (s *Server) enter(ctx context.Context, w http.ResponseWriter) bool {
	if err := s.adm.Acquire(ctx); err != nil {
		s.writeAdmissionError(w, err)
		return false
	}
	if err := s.gate.Enter(); err != nil {
		s.adm.Release()
		s.writeAdmissionError(w, err)
		return false
	}
	s.stats.requests.Add(1)
	return true
}

// exit releases what enter acquired.
func (s *Server) exit() {
	s.gate.Exit()
	s.adm.Release()
}

// writeAdmissionError maps an admission failure to its status code.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admit.ErrQueueFull):
		s.stats.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, wire.CodeQueueFull, err)
	case errors.Is(err, admit.ErrDraining):
		s.stats.rejectedDraining.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, err)
	default: // context deadline or cancellation while queued
		s.stats.deadlineExpired.Add(1)
		writeError(w, http.StatusGatewayTimeout, wire.CodeDeadline, err)
	}
}

// writeQueryError maps an engine error to its status code.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, parsearch.ErrEmpty):
		writeError(w, http.StatusNotFound, wire.CodeEmpty, err)
	case errors.Is(err, parsearch.ErrUnavailable):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, wire.CodeUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.stats.deadlineExpired.Add(1)
		writeError(w, http.StatusGatewayTimeout, wire.CodeDeadline, err)
	default:
		writeError(w, http.StatusInternalServerError, wire.CodeInternal, err)
	}
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// readBody reads a bounded request body; a decode-side failure is the
// client's (400 or 413 via MaxBytesReader).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Errorf("server: reading body: %w", err))
		return nil, false
	}
	return body, true
}

// approxOf resolves a request's approximate-tier knobs: absent wire
// fields fall back to the served index's defaults, present ones
// override them (already range-validated by the wire decoder).
func (s *Server) approxOf(epsilon, recallTarget *float64) parsearch.Approx {
	a := s.ix.ApproxDefaults()
	if epsilon != nil {
		a.Epsilon = *epsilon
	}
	if recallTarget != nil {
		a.RecallTarget = *recallTarget
	}
	return a
}

// shardSpecOf converts a wire shard restriction to the engine's form,
// rejecting group counts beyond the served index's disk count — a
// structural mismatch only the server can see (the wire decoder knows
// no disk count), and the coordinator's misconfiguration, not an
// engine fault, so it maps to 400.
func (s *Server) shardSpecOf(spec *wire.ShardSpec) (parsearch.ShardSpec, error) {
	if spec == nil {
		return parsearch.ShardSpec{}, nil
	}
	if disks := s.ix.Disks(); spec.Of > disks {
		return parsearch.ShardSpec{}, fmt.Errorf("server: %d shard groups over %d disks", spec.Of, disks)
	}
	return parsearch.ShardSpec{Of: spec.Of, Groups: spec.Groups}, nil
}

// wireNeighbors converts engine results to the wire form. An empty
// result stays nil so it round-trips to the library's nil slice —
// byte-identity with direct calls includes the no-match case.
func wireNeighbors(ns []parsearch.Neighbor) []wire.Neighbor {
	if len(ns) == 0 {
		return nil
	}
	out := make([]wire.Neighbor, len(ns))
	for i, n := range ns {
		out[i] = wire.Neighbor{ID: n.ID, Point: n.Point, Dist: n.Dist}
	}
	return out
}

// rawStats marshals query statistics for the response; stats are
// advisory, so a marshal failure degrades to omitting them.
func rawStats(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return b
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeKNN(body, s.ix.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	shards, err := s.shardSpecOf(req.Shard)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	a := s.approxOf(req.Epsilon, req.RecallTarget)
	if req.Bound != nil {
		a.Bound = *req.Bound
	}
	var (
		neighbors []parsearch.Neighbor
		stats     parsearch.QueryStats
	)
	if s.cfg.DisableCoalescing || shards.Enabled() || req.Bound != nil {
		// Coordinator fan-out requests bypass the coalescer: their
		// per-request bound and shard restriction are query-private and
		// must not leak into a coalesced group's shared Approx knobs.
		neighbors, stats, err = s.ix.KNNShardContext(ctx, req.Query, req.K, a, shards)
	} else {
		res := s.coal.submit(ctx, req.Query, req.K, a)
		neighbors, stats, err = res.neighbors, res.stats, res.err
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, wire.QueryResponse{Neighbors: wireNeighbors(neighbors), Stats: rawStats(stats)})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeRange(body, s.ix.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	shards, err := s.shardSpecOf(req.Shard)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	neighbors, stats, err := s.ix.RangeQueryShardContext(ctx, req.Min, req.Max, shards)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, wire.QueryResponse{Neighbors: wireNeighbors(neighbors), Stats: rawStats(stats)})
}

func (s *Server) handlePartialMatch(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodePartialMatch(body, s.ix.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	spec := make([]float64, len(req.Spec))
	for i, v := range req.Spec {
		if v == nil {
			spec[i] = parsearch.Wildcard
		} else {
			spec[i] = *v
		}
	}
	shards, err := s.shardSpecOf(req.Shard)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	neighbors, stats, err := s.ix.PartialMatchShardContext(ctx, spec, req.Eps, shards)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, wire.QueryResponse{Neighbors: wireNeighbors(neighbors), Stats: rawStats(stats)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeBatch(body, s.ix.Dim(), s.cfg.MaxBatchRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	shards, err := s.shardSpecOf(req.Shard)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	a := s.approxOf(req.Epsilon, req.RecallTarget)
	if req.Bound != nil {
		a.Bound = *req.Bound
	}
	results, stats, err := s.ix.BatchKNNShardContext(ctx, req.Queries, req.K, a, shards)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	out := make([][]wire.Neighbor, len(results))
	for i, ns := range results {
		out[i] = wireNeighbors(ns)
	}
	writeJSON(w, wire.BatchResponse{Results: out, Stats: rawStats(stats)})
}

// handleCatchup serves one snapshot+delta round to a catching-up
// follower (see parsearch.Index.Catchup). Catch-up bypasses query
// admission: it does not touch the query engine, and a replica must be
// able to converge even while the serving path is saturated — its cost
// is bounded by the checkpoint lock it shares with generation rotation.
func (s *Server) handleCatchup(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeCatchup(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	delta, err := s.ix.Catchup(req.Have, req.Gen, req.Offset)
	if err != nil {
		switch {
		case errors.Is(err, parsearch.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, wire.CodeUnavailable, err)
		case !s.ix.Durability().Durable:
			writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		default:
			writeError(w, http.StatusInternalServerError, wire.CodeInternal, err)
		}
		return
	}
	files := make([]wire.CatchupFile, len(delta.Files))
	for i, f := range delta.Files {
		files[i] = wire.CatchupFile{Name: f.Name, Offset: f.Offset, Data: f.Data}
	}
	writeJSON(w, wire.CatchupResponse{
		Gen:        delta.Gen,
		NextOffset: delta.NextOffset,
		Reset:      delta.Reset,
		Files:      files,
	})
}

// health computes the health view from the fault-routing state: a
// failed disk whose chained replica is live is "rerouted" (queries
// stay exact); a failed disk with no live replica makes data
// unreachable and the instance "degraded".
func (s *Server) health() wire.Health {
	h := wire.Health{Status: "ok", Disks: s.ix.Disks(), Draining: s.gate.IsDraining()}
	for d := 0; d < s.ix.Disks(); d++ {
		if !s.ix.DiskFailed(d) {
			continue
		}
		h.FailedDisks = append(h.FailedDisks, d)
		if r := s.ix.ReplicaDisk(d); r < 0 || s.ix.DiskFailed(r) {
			h.Unreachable = append(h.Unreachable, d)
		}
	}
	switch {
	case h.Draining:
		h.Status = "draining"
	case len(h.Unreachable) > 0:
		h.Status = "degraded"
	case len(h.FailedDisks) > 0:
		h.Status = "rerouted"
	}
	if d := s.ix.Durability(); d.Durable {
		h.Durability = &wire.Durability{
			Generation:       d.Generation,
			SyncPolicy:       d.SyncPolicy,
			WALLagBytes:      d.WALLagBytes,
			Recovered:        d.Recovery.Recovered,
			RecoveredRecords: d.Recovery.Records,
			TornBytes:        d.Recovery.TornBytes,
			Salvaged:         d.Recovery.Salvaged,
		}
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if h.Status == "degraded" || h.Status == "draining" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(h)
}

// statuszPayload is the /statusz document.
type statuszPayload struct {
	Index   statuszIndex `json:"index"`
	Serving statuszServe `json:"serving"`
	// Durability is the full parsearch.DurabilityInfo (WAL lengths,
	// lag, recovery detail) when the index is durable; omitted
	// otherwise.
	Durability any `json:"durability,omitempty"`
	Metrics    any `json:"metrics"`
}

type statuszIndex struct {
	Dim         int    `json:"dim"`
	Disks       int    `json:"disks"`
	Strategy    string `json:"strategy"`
	Replication int    `json:"replication"`
	Points      int    `json:"points"`
	FailedDisks []int  `json:"failed_disks,omitempty"`
}

type statuszServe struct {
	CoalesceWindowMs  float64 `json:"coalesce_window_ms"`
	MaxBatch          int     `json:"max_batch"`
	CoalescingEnabled bool    `json:"coalescing_enabled"`
	MaxInFlight       int     `json:"max_in_flight"`
	MaxQueue          int     `json:"max_queue"`
	DefaultTimeoutMs  float64 `json:"default_timeout_ms"`
	Stats             Stats   `json:"stats"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	var durability any
	if d := s.ix.Durability(); d.Durable {
		durability = d
	}
	writeJSON(w, statuszPayload{
		Durability: durability,
		Index: statuszIndex{
			Dim:         s.ix.Dim(),
			Disks:       s.ix.Disks(),
			Strategy:    s.ix.Strategy(),
			Replication: s.ix.Replication(),
			Points:      s.ix.Len(),
			FailedDisks: h.FailedDisks,
		},
		Serving: statuszServe{
			CoalesceWindowMs:  float64(s.cfg.CoalesceWindow) / float64(time.Millisecond),
			MaxBatch:          s.cfg.MaxBatch,
			CoalescingEnabled: !s.cfg.DisableCoalescing,
			MaxInFlight:       s.cfg.MaxInFlight,
			MaxQueue:          s.cfg.MaxQueue,
			DefaultTimeoutMs:  float64(s.cfg.DefaultTimeout) / float64(time.Millisecond),
			Stats:             s.Stats(),
		},
		Metrics: s.ix.Metrics(),
	})
}
