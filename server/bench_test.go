package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"parsearch/client"
)

// BenchmarkServerKNN measures the served k-NN path end to end: HTTP
// decode, admission, coalescing, engine query, JSON encode — the
// serving overhead on top of BenchmarkKNN-style library numbers. The
// parallel variant is the interesting one: coalescing only has
// concurrent traffic to merge when the bench driver issues requests
// from many goroutines.
func BenchmarkServerKNN(b *testing.B) {
	const (
		dim = 8
		n   = 4000
		k   = 10
	)
	ix := testIndex(b, dim, n, 16, 0)
	srv, err := New(ix, Config{CoalesceWindow: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b.Run("serial", func(b *testing.B) {
		cl := client.New(ts.URL)
		q := randQuery(dim, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.KNN(context.Background(), q, k); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel", func(b *testing.B) {
		cl := client.New(ts.URL)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			q := randQuery(dim, 1)
			for pb.Next() {
				if _, err := cl.KNN(context.Background(), q, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		st := srv.Stats()
		if st.CoalescedQueries > 0 {
			b.ReportMetric(float64(st.CoalescedQueries)/float64(st.CoalescedBatches), "queries/batch")
		}
	})
}
