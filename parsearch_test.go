package parsearch

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"parsearch/internal/data"
	"parsearch/internal/vec"
)

func TestOpenValidation(t *testing.T) {
	bad := []Options{
		{Dim: 0, Disks: 4},
		{Dim: 70, Disks: 4},
		{Dim: 8, Disks: 0},
		{Dim: 8, Disks: 4, Kind: "nope"},
		{Dim: 8, Disks: 4, PageSize: 64},
		{Dim: 8, Disks: 4, Kind: Hilbert, Recursive: true},
		{Dim: 65, Disks: 4, Kind: Hilbert},
	}
	for i, opts := range bad {
		if _, err := Open(opts); err == nil {
			t.Errorf("options %d (%+v): expected error", i, opts)
		}
	}
	ix, err := Open(Options{Dim: 8, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Strategy() != "new" || ix.Disks() != 4 || ix.Len() != 0 {
		t.Errorf("defaults wrong: %s %d %d", ix.Strategy(), ix.Disks(), ix.Len())
	}
}

func TestAllStrategiesOpen(t *testing.T) {
	for _, k := range []Kind{NearOptimal, Hilbert, DiskModulo, FX, RoundRobin, DirectOnly} {
		if _, err := Open(Options{Dim: 8, Disks: 5, Kind: k}); err != nil {
			t.Errorf("Open(%s): %v", k, err)
		}
	}
}

func TestBuildValidatesDimensions(t *testing.T) {
	ix, _ := Open(Options{Dim: 3, Disks: 2})
	if err := ix.Build([][]float64{{0.5, 0.5}}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestEmptyQueries(t *testing.T) {
	ix, _ := Open(Options{Dim: 2, Disks: 2})
	if _, _, err := ix.NN([]float64{0.5, 0.5}); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestQueryValidation(t *testing.T) {
	ix, _ := Open(Options{Dim: 2, Disks: 2})
	ix.Build([][]float64{{0.1, 0.1}})
	if _, _, err := ix.KNN([]float64{0.5}, 1); err == nil {
		t.Error("expected dimension error")
	}
	if _, _, err := ix.KNN([]float64{0.5, 0.5}, 0); err == nil {
		t.Error("expected k error")
	}
}

// Correctness across all strategies: parallel k-NN must equal a direct
// linear scan.
func TestKNNMatchesLinearScanAllStrategies(t *testing.T) {
	const d, n = 8, 1200
	pts := data.Uniform(n, d, 42)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	queries := data.Uniform(30, d, 43)

	for _, kind := range []Kind{NearOptimal, Hilbert, DiskModulo, FX, RoundRobin, DirectOnly} {
		ix, err := Open(Options{Dim: d, Disks: 5, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			got, _, err := ix.KNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			want := linearKNN(pts, q, 7)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d results", kind, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("%s: result %d dist %v, want %v", kind, i, got[i].Dist, want[i])
				}
			}
		}
	}
}

func linearKNN(pts []vec.Point, q vec.Point, k int) []float64 {
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = vec.Dist(q, p)
	}
	// Simple selection of the k smallest.
	out := make([]float64, 0, k)
	used := make([]bool, len(dists))
	for len(out) < k && len(out) < len(dists) {
		best, bestIdx := math.Inf(1), -1
		for i, dd := range dists {
			if !used[i] && dd < best {
				best, bestIdx = dd, i
			}
		}
		used[bestIdx] = true
		out = append(out, best)
	}
	return out
}

func TestInsertDynamic(t *testing.T) {
	ix, _ := Open(Options{Dim: 4, Disks: 3, Baseline: true})
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		p := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		id, err := ix.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	if ix.Len() != 300 {
		t.Errorf("Len = %d", ix.Len())
	}
	if _, err := ix.Insert([]float64{0.5}); err == nil {
		t.Error("expected dimension error")
	}
	nb, stats, err := ix.NN([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Dist < 0 || len(nb.Point) != 4 {
		t.Errorf("bad neighbor %+v", nb)
	}
	if stats.Speedup <= 0 {
		t.Errorf("baseline index should report a speed-up, got %+v", stats)
	}
}

func TestStatsConsistency(t *testing.T) {
	const d, n = 8, 4000
	pts := data.Uniform(n, d, 7)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	ix, _ := Open(Options{Dim: d, Disks: 8, Baseline: true})
	ix.Build(raw)
	q := data.Uniform(1, d, 8)[0]
	_, stats, err := ix.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum, max := 0, 0
	for _, p := range stats.PagesPerDisk {
		sum += p
		if p > max {
			max = p
		}
	}
	if sum != stats.TotalPages || max != stats.MaxPages {
		t.Errorf("stats inconsistent: %+v", stats)
	}
	if stats.MaxPages < 1 {
		t.Error("no pages read")
	}
	// The parallel index partitions the same points, so the total page
	// count across disks should be within a small factor of the
	// sequential count (page boundaries differ).
	if stats.SeqPages < 1 {
		t.Error("baseline pages missing")
	}
	if stats.ParallelTime <= 0 || stats.SequentialTime <= 0 {
		t.Errorf("times missing: %+v", stats)
	}
}

// The headline behaviour: near-optimal declustering yields a higher
// speed-up than round robin on uniform high-dimensional data. The scale
// must let per-disk trees resolve quadrants (N/2^d at least a page), so
// d=8 with 8000 points.
func TestNearOptimalBeatsRoundRobin(t *testing.T) {
	const d, n, disks = 8, 8000, 8
	pts := data.Uniform(n, d, 123)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	queries := data.Uniform(20, d, 124)

	avgMax := func(kind Kind) float64 {
		ix, err := Open(Options{Dim: d, Disks: disks, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, q := range queries {
			_, stats, err := ix.KNN(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			total += stats.MaxPages
		}
		return float64(total) / float64(len(queries))
	}

	newMax := avgMax(NearOptimal)
	rrMax := avgMax(RoundRobin)
	if newMax >= rrMax {
		t.Errorf("near-optimal bottleneck %v pages, round robin %v — expected improvement", newMax, rrMax)
	}
}

func TestVerifyDeclustering(t *testing.T) {
	ix, _ := Open(Options{Dim: 3, Disks: 4})
	v, err := ix.VerifyDeclustering(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("near-optimal strategy reported violations: %v", v)
	}
	ix, _ = Open(Options{Dim: 3, Disks: 4, Kind: Hilbert})
	v, err = ix.VerifyDeclustering(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 {
		t.Error("Hilbert in d=3 should violate near-optimality (Lemma 1)")
	}
	ix, _ = Open(Options{Dim: 3, Disks: 4, Kind: RoundRobin})
	if _, err := ix.VerifyDeclustering(0); err == nil {
		t.Error("round robin verification should error")
	}
}

func TestRecursiveOptionBalancesClusters(t *testing.T) {
	const d, n, disks = 8, 3000, 8
	pts := data.Clustered(n, d, 1, 0.02, 5)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	plain, _ := Open(Options{Dim: d, Disks: disks})
	plain.Build(raw)
	rec, _ := Open(Options{Dim: d, Disks: disks, Recursive: true, QuantileSplits: true})
	rec.Build(raw)

	maxLoad := func(loads []int) int {
		m := 0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return m
	}
	if maxLoad(rec.DiskLoads()) >= maxLoad(plain.DiskLoads()) {
		t.Errorf("recursive declustering did not balance: %v vs %v",
			rec.DiskLoads(), plain.DiskLoads())
	}
}

func TestQuantileSplitsBalanceSkewedData(t *testing.T) {
	const d, n, disks = 8, 4000, 8
	r := rand.New(rand.NewSource(31))
	raw := make([][]float64, n)
	for i := range raw {
		p := make([]float64, d)
		for j := range p {
			p[j] = r.Float64() * r.Float64() // skewed toward 0
		}
		raw[i] = p
	}
	plain, _ := Open(Options{Dim: d, Disks: disks})
	plain.Build(raw)
	quant, _ := Open(Options{Dim: d, Disks: disks, QuantileSplits: true})
	quant.Build(raw)

	imbalance := func(loads []int) float64 {
		m := 0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return float64(m) * float64(disks) / float64(n)
	}
	if imbalance(quant.DiskLoads()) >= imbalance(plain.DiskLoads()) {
		t.Errorf("quantile splits did not help: %v vs %v",
			quant.DiskLoads(), plain.DiskLoads())
	}
}

func TestBuildReplacesContent(t *testing.T) {
	ix, _ := Open(Options{Dim: 2, Disks: 2})
	ix.Build([][]float64{{0.1, 0.1}, {0.2, 0.2}})
	ix.Build([][]float64{{0.9, 0.9}})
	if ix.Len() != 1 {
		t.Errorf("Len = %d after rebuild", ix.Len())
	}
	nb, _, err := ix.NN([]float64{0.8, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if nb.ID != 0 || math.Abs(nb.Point[0]-0.9) > 1e-12 {
		t.Errorf("unexpected neighbor %+v", nb)
	}
}

func TestKLargerThanData(t *testing.T) {
	ix, _ := Open(Options{Dim: 2, Disks: 4})
	ix.Build([][]float64{{0.1, 0.1}, {0.9, 0.9}})
	res, _, err := ix.KNN([]float64{0.5, 0.5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("got %d results, want 2", len(res))
	}
}

func TestConcurrentQueries(t *testing.T) {
	const d, n = 8, 2000
	pts := data.Uniform(n, d, 55)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	ix, _ := Open(Options{Dim: d, Disks: 4})
	ix.Build(raw)
	queries := data.Uniform(32, d, 56)
	done := make(chan error, len(queries))
	for _, q := range queries {
		go func(q []float64) {
			_, _, err := ix.KNN(q, 3)
			done <- err
		}(q)
	}
	for range queries {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiskFailurePropagates(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 4, Disks: 4}, 2000)
	q := []float64{0.5, 0.5, 0.5, 0.5}
	if _, stats, err := ix.KNN(q, 5); err != nil {
		t.Fatalf("healthy query failed: %v", err)
	} else if stats.Degraded || stats.Unreachable != 0 {
		t.Errorf("healthy query reported degraded stats: %+v", stats)
	}
	if err := ix.FailDisk(99); err == nil {
		t.Error("failing an unknown disk should error")
	}
	if err := ix.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	// Without replication a pre-failed disk no longer errors the query:
	// it returns best-effort results flagged Degraded.
	if _, stats, err := ix.KNN(q, 5); err != nil {
		t.Errorf("degraded query should succeed best-effort: %v", err)
	} else if !stats.Degraded {
		t.Error("query over a failed, unreplicated disk should be flagged Degraded")
	} else if stats.Unreachable == 0 {
		t.Error("degraded query should count its unreachable pages")
	}
	if err := ix.HealDisk(2); err != nil {
		t.Fatal(err)
	}
	if _, stats, err := ix.KNN(q, 5); err != nil {
		t.Errorf("healed disk still failing: %v", err)
	} else if stats.Degraded {
		t.Error("query after heal still flagged Degraded")
	}
	if err := ix.HealDisk(-1); err == nil {
		t.Error("healing an unknown disk should error")
	}
}

// Concurrent mixed workload under the race detector: queries, inserts,
// deletes and browsing running together must stay consistent.
func TestConcurrentMixedWorkload(t *testing.T) {
	const d = 4
	ix := buildTestIndex(t, Options{Dim: d, Disks: 4}, 2000)
	done := make(chan error, 24)
	for w := 0; w < 8; w++ {
		go func(w int) { // queriers
			q := []float64{0.1 * float64(w%5), 0.5, 0.5, 0.3}
			for i := 0; i < 30; i++ {
				if _, _, err := ix.KNN(q, 3); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		go func(w int) { // writers
			for i := 0; i < 20; i++ {
				p := []float64{0.2, 0.3 * float64(w%3), 0.4, 0.8}
				if _, err := ix.Insert(p); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		go func(w int) { // browsers
			for i := 0; i < 10; i++ {
				b, err := ix.Browse([]float64{0.5, 0.5, 0.5, 0.5})
				if err != nil {
					done <- err
					return
				}
				b.Next()
				b.Close()
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 24; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 2000+8*20 {
		t.Errorf("Len = %d after concurrent inserts", ix.Len())
	}
}
