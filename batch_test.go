package parsearch

import (
	"testing"

	"parsearch/internal/data"
)

func TestBatchKNNMatchesSingleQueries(t *testing.T) {
	const d, n = 6, 3000
	ix := buildTestIndex(t, Options{Dim: d, Disks: 8}, n)
	queries := make([][]float64, 12)
	for i, q := range data.Uniform(len(queries), d, 88) {
		queries[i] = q
	}
	batch, stats, err := ix.BatchKNN(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("%d result sets, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		single, _, err := ix.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j].ID != batch[i][j].ID || single[j].Dist != batch[i][j].Dist {
				t.Fatalf("query %d result %d differs: %+v vs %+v", i, j, batch[i][j], single[j])
			}
		}
	}
	if stats.Queries != len(queries) || stats.TotalPages < 1 {
		t.Errorf("implausible batch stats: %+v", stats)
	}
	if stats.QueriesPerSecond <= 0 || stats.Utilization <= 0 || stats.Utilization > 1.0001 {
		t.Errorf("derived metrics wrong: %+v", stats)
	}
	sum := 0
	for _, p := range stats.PagesPerDisk {
		sum += p
	}
	if sum != stats.TotalPages {
		t.Errorf("per-disk pages %d != total %d", sum, stats.TotalPages)
	}
}

func TestBatchKNNValidation(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 2, Disks: 2}, 50)
	if _, _, err := ix.BatchKNN([][]float64{{0.5, 0.5}}, 0); err == nil {
		t.Error("expected k error")
	}
	if _, _, err := ix.BatchKNN([][]float64{{0.5}}, 1); err == nil {
		t.Error("expected dimension error")
	}
	empty, _ := Open(Options{Dim: 2, Disks: 2})
	if _, _, err := empty.BatchKNN([][]float64{{0.5, 0.5}}, 1); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestBatchKNNEmptyBatch(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 2, Disks: 2}, 50)
	res, stats, err := ix.BatchKNN(nil, 3)
	if err != nil || len(res) != 0 || stats.Queries != 0 {
		t.Errorf("empty batch: res=%v stats=%+v err=%v", res, stats, err)
	}
}

// Throughput balance: over a batch, even round robin balances total work,
// so utilization should be high for both RR and near-optimal — the
// insight behind the paper's throughput remark.
func TestBatchUtilizationHigh(t *testing.T) {
	const d, n = 8, 8000
	pts := data.Uniform(n, d, 3)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	queries := make([][]float64, 32)
	for i, q := range data.Uniform(len(queries), d, 4) {
		queries[i] = q
	}
	for _, kind := range []Kind{NearOptimal, RoundRobin} {
		ix, err := Open(Options{Dim: d, Disks: 8, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		_, stats, err := ix.BatchKNN(queries, 10)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Utilization < 0.5 {
			t.Errorf("%s: batch utilization %.2f too low", kind, stats.Utilization)
		}
	}
}

func TestServiceDemands(t *testing.T) {
	const d, n = 6, 3000
	ix := buildTestIndex(t, Options{Dim: d, Disks: 8}, n)
	queries := make([][]float64, 6)
	for i, q := range data.Uniform(len(queries), d, 17) {
		queries[i] = q
	}
	demands, err := ix.ServiceDemands(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(demands) != len(queries) {
		t.Fatalf("%d demand rows", len(demands))
	}
	for i, row := range demands {
		if len(row) != 8 {
			t.Fatalf("row %d has %d disks", i, len(row))
		}
		total := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative demand %v", v)
			}
			total += v
		}
		if total <= 0 {
			t.Fatalf("query %d needs no disk time at all", i)
		}
	}
	// Errors.
	if _, err := ix.ServiceDemands(queries, 0); err == nil {
		t.Error("expected k error")
	}
	if _, err := ix.ServiceDemands([][]float64{{0.5}}, 1); err == nil {
		t.Error("expected dimension error")
	}
	empty, _ := Open(Options{Dim: d, Disks: 8})
	if _, err := empty.ServiceDemands(queries, 1); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestDiskParamsValidation(t *testing.T) {
	p := DefaultDiskParams()
	if p.Seek <= 0 || p.Transfer <= 0 {
		t.Errorf("implausible default params %+v", p)
	}
	bad := DiskParams{Seek: -1}
	if _, err := Open(Options{Dim: 2, Disks: 2, DiskParams: &bad}); err == nil {
		t.Error("negative disk params accepted")
	}
	good := DiskParams{Seek: 1, Transfer: 1}
	if _, err := Open(Options{Dim: 2, Disks: 2, DiskParams: &good}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}
