package parsearch

import (
	"reflect"
	"sort"
	"testing"

	"parsearch/internal/fsx"
)

// The crash-recovery chaos battery: run a fixed mixed workload
// (inserts, deletes, checkpoints, a rebuild) against the in-memory
// failpoint filesystem, kill the "process" at every injected write
// offset, reopen from what a real crash would have left behind, and
// assert the recovered index is byte-identical to an in-memory oracle
// state that contains every acknowledged mutation.
//
// Two storage models are checked at every crash point:
//
//   - DurableView (pessimistic): only fsynced bytes survived. With
//     WALSyncAlways this is the binding guarantee — every acknowledged
//     mutation must be recovered.
//   - FlushedView (optimistic): the kernel flushed everything written.
//     Recovery must also be correct when MORE than the synced prefix
//     survives (the unacked tail is applied or torn, never mangled).
//
// In both models the recovered point table must equal the oracle state
// after some prefix of the workload that includes all acknowledged
// operations — recovery may surface a crash-truncated suffix, but it
// must never lose an acked mutation, reorder, or invent one.

// chaosOp is one workload step.
type chaosOp struct {
	kind  string // "insert", "delete", "checkpoint", "build"
	point []float64
	id    int
	build [][]float64
}

// chaosWorkload is the fixed mixed-mutation sequence of the battery:
// enough inserts to span several WAL frames, deletes, two generation
// rotations, and a full rebuild (the rebase path), all deterministic.
func chaosWorkload() []chaosOp {
	var ops []chaosOp
	n := 0
	insert := func(k int) {
		for i := 0; i < k; i++ {
			ops = append(ops, chaosOp{kind: "insert", point: durPoint(n, 3)})
			n++
		}
	}
	insert(10)
	ops = append(ops, chaosOp{kind: "delete", id: 2})
	ops = append(ops, chaosOp{kind: "delete", id: 5})
	ops = append(ops, chaosOp{kind: "checkpoint"})
	insert(5)
	ops = append(ops, chaosOp{kind: "delete", id: 12})
	ops = append(ops, chaosOp{kind: "build", build: [][]float64{
		durPoint(200, 3), durPoint(201, 3), nil, durPoint(203, 3), durPoint(204, 3),
	}})
	insert(4) // IDs 5..8 of the rebased table
	ops = append(ops, chaosOp{kind: "delete", id: 0})
	ops = append(ops, chaosOp{kind: "checkpoint"})
	insert(3)
	return ops
}

// chaosStates returns the oracle point table after every prefix of the
// workload: states[k] is the table once the first k operations have
// been applied.
func chaosStates(ops []chaosOp) [][][]float64 {
	states := make([][][]float64, len(ops)+1)
	var table [][]float64
	states[0] = nil
	for k, op := range ops {
		switch op.kind {
		case "insert":
			table = append(table, append([]float64(nil), op.point...))
		case "delete":
			table[op.id] = nil
		case "build":
			table = nil
			for _, p := range op.build {
				if p == nil {
					table = append(table, nil)
				} else {
					table = append(table, append([]float64(nil), p...))
				}
			}
		case "checkpoint":
			// no effect on the table
		}
		cp := make([][]float64, len(table))
		for i, p := range table {
			if p != nil {
				cp[i] = append([]float64(nil), p...)
			}
		}
		states[k+1] = cp
	}
	return states
}

// tablesEqual compares two point tables slot by slot, treating nil and
// empty tables as equal (a freshly recovered empty index has no slots).
func tablesEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			return false
		}
		if a[i] != nil && !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// runChaos executes the workload until the first failure (the crash)
// and returns how many operations were acknowledged.
func runChaos(ix *Index, ops []chaosOp) int {
	for k, op := range ops {
		var err error
		switch op.kind {
		case "insert":
			_, err = ix.Insert(op.point)
		case "delete":
			err = ix.Delete(op.id)
		case "build":
			err = ix.Build(op.build)
		case "checkpoint":
			err = ix.Checkpoint()
		}
		if err != nil {
			return k
		}
	}
	return len(ops)
}

// verifyRecovery reopens the index from one post-crash view and checks
// the recovery contract: no crash artifact is ever classified as
// corruption, and the recovered table equals an oracle prefix state
// containing every acknowledged operation. With checkAnswers set it
// additionally compares KNN answers against a freshly built oracle
// index — exact search is structure-independent, so the answers must
// be byte-identical.
func verifyRecovery(t *testing.T, view *fsx.Mem, states [][][]float64, acked int, checkAnswers bool) {
	t.Helper()
	re, err := openDurable(durableOpts(), view)
	if err != nil {
		t.Fatalf("acked=%d: crash artifact refused as %v", acked, err)
	}
	got := tableOf(re)
	match := -1
	for k := acked; k < len(states); k++ {
		if tablesEqual(got, states[k]) {
			match = k
			break
		}
	}
	if match < 0 {
		t.Fatalf("acked=%d: recovered table (%d slots) matches no oracle prefix ≥ acked — an acknowledged mutation was lost or mangled", acked, len(got))
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatalf("acked=%d: recovered index integrity: %v", acked, err)
	}
	if !checkAnswers || re.Len() == 0 {
		return
	}
	oracle, err := Open(Options{Dim: 3, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Build(got); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		query := durPoint(q*13+1, 3)
		k := 5
		if k > re.Len() {
			k = re.Len()
		}
		gotN, _, err := re.KNN(query, k)
		if err != nil {
			t.Fatalf("acked=%d: recovered KNN: %v", acked, err)
		}
		wantN, _, err := oracle.KNN(query, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotN, wantN) {
			t.Fatalf("acked=%d query %d: recovered answers differ from oracle", acked, q)
		}
	}
}

func TestChaosCrashRecoveryBattery(t *testing.T) {
	ops := chaosWorkload()
	states := chaosStates(ops)

	// Golden run, no failpoints: the workload completes, the end state
	// matches the oracle, and the write boundaries become the crash
	// points to sweep.
	golden := fsx.NewMem()
	gix, err := openDurable(durableOpts(), golden)
	if err != nil {
		t.Fatal(err)
	}
	if acked := runChaos(gix, ops); acked != len(ops) {
		t.Fatalf("golden run acked %d/%d ops", acked, len(ops))
	}
	if !tablesEqual(tableOf(gix), states[len(ops)]) {
		t.Fatal("golden run end state differs from oracle")
	}
	total := golden.TotalWritten()
	bounds := golden.WriteBoundaries()

	// Crash points: every write boundary plus intra-write offsets, so
	// both whole-frame loss and torn frames are exercised.
	seen := map[int64]bool{}
	var offsets []int64
	add := func(off int64) {
		if off >= 0 && off < total && !seen[off] {
			seen[off] = true
			offsets = append(offsets, off)
		}
	}
	for _, b := range bounds {
		add(b)
		add(b + 1)
		add(b + 7)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	if len(offsets) < 50 {
		t.Fatalf("only %d crash points — workload too small for a meaningful sweep", len(offsets))
	}

	for i, off := range offsets {
		checkAnswers := i%9 == 0
		fs := fsx.NewMem()
		fs.CrashAfter(off)
		acked := 0
		if ix, err := openDurable(durableOpts(), fs); err == nil {
			acked = runChaos(ix, ops)
		}
		// else: the process died while the index was being opened —
		// nothing was acknowledged, and recovery must still work.
		if !fs.Crashed() {
			t.Fatalf("offset %d: workload finished without hitting the crash point", off)
		}
		verifyRecovery(t, fs.DurableView(), states, acked, checkAnswers)
		// The optimistic model keeps unacked flushed bytes; the acked
		// floor still binds.
		verifyRecovery(t, fs.FlushedView(), states, acked, checkAnswers)
	}
}

// TestChaosRepeatedCrashes recovers, mutates, and crashes again across
// several lives of the same directory: recovery must compose with
// itself (truncated tails, reseeded logs, partial rotations from
// earlier lives must never confuse a later recovery).
func TestChaosRepeatedCrashes(t *testing.T) {
	fs := fsx.NewMem()
	lives := []int64{120, 300, 650, 900, 1400}
	for round, extra := range lives {
		base := fs.TotalWritten()
		fs.CrashAfter(base + extra)
		ix, err := openDurable(durableOpts(), fs)
		if err != nil {
			// Died during open; next life recovers from the residue.
			fs = fs.FlushedView()
			continue
		}
		for i := 0; ; i++ {
			if _, err := ix.Insert(durPoint(round*100+i, 3)); err != nil {
				break
			}
			if i%5 == 4 {
				if err := ix.Checkpoint(); err != nil {
					break
				}
			}
		}
		if !fs.Crashed() {
			t.Fatalf("round %d: crash point never hit", round)
		}
		if round%2 == 0 {
			fs = fs.DurableView()
		} else {
			fs = fs.FlushedView()
		}
	}
	// Final recovery must be clean and internally consistent.
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// And stable: a second reopen of the untouched directory sees the
	// same state.
	re2, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableOf(re), tableOf(re2)) {
		t.Fatal("recovery of an untouched directory is not deterministic")
	}
}
