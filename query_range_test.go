package parsearch

import (
	"math"
	"testing"

	"parsearch/internal/data"
	"parsearch/internal/vec"
)

func TestRangeQueryMatchesLinearScan(t *testing.T) {
	const d, n = 5, 2000
	pts := data.Uniform(n, d, 31)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	for _, kind := range []Kind{NearOptimal, Hilbert, RoundRobin} {
		ix, err := Open(Options{Dim: d, Disks: 4, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		min := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
		max := []float64{0.7, 0.7, 0.7, 0.7, 0.7}
		got, stats, err := ix.RangeQuery(min, max)
		if err != nil {
			t.Fatal(err)
		}
		rect := vec.NewRect(min, max)
		var want []int
		for i, p := range pts {
			if rect.Contains(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", kind, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("%s: result %d = id %d, want %d (ordered by ID)", kind, i, got[i].ID, want[i])
			}
		}
		if stats.MaxPages < 1 || stats.TotalPages < stats.MaxPages {
			t.Errorf("%s: implausible stats %+v", kind, stats)
		}
	}
}

func TestRangeQueryValidation(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 2, Disks: 2}, 10)
	if _, _, err := ix.RangeQuery([]float64{0}, []float64{1, 1}); err == nil {
		t.Error("expected dimension error")
	}
	if _, _, err := ix.RangeQuery([]float64{0.5, 0.5}, []float64{0.4, 0.9}); err == nil {
		t.Error("expected min>max error")
	}
	empty, _ := Open(Options{Dim: 2, Disks: 2})
	if _, _, err := empty.RangeQuery([]float64{0, 0}, []float64{1, 1}); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestRangeQueryEmptyResult(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 2, Disks: 2}, 100)
	got, _, err := ix.RangeQuery([]float64{2, 2}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no results outside the data space, got %d", len(got))
	}
}

func TestRangeQueryBaselineStats(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 4, Disks: 4, Baseline: true}, 2000)
	_, stats, err := ix.RangeQuery(
		[]float64{0.1, 0.1, 0.1, 0.1}, []float64{0.6, 0.6, 0.6, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SeqPages < 1 || stats.BaselineSpeedup <= 0 {
		t.Errorf("baseline stats missing: %+v", stats)
	}
}

func TestPartialMatch(t *testing.T) {
	const d, n = 4, 3000
	pts := data.Uniform(n, d, 77)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	ix, err := Open(Options{Dim: d, Disks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}

	spec := []float64{0.5, Wildcard, 0.3, Wildcard}
	const eps = 0.05
	got, _, err := ix.PartialMatch(spec, eps)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, p := range pts {
		if math.Abs(p[0]-0.5) <= eps && math.Abs(p[2]-0.3) <= eps {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("partial match: %d results, want %d", len(got), want)
	}
	for _, nb := range got {
		if math.Abs(nb.Point[0]-0.5) > eps || math.Abs(nb.Point[2]-0.3) > eps {
			t.Fatalf("result %d violates the specification: %v", nb.ID, nb.Point)
		}
	}
}

func TestPartialMatchValidation(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 3, Disks: 2}, 10)
	if _, _, err := ix.PartialMatch([]float64{0.5}, 0.1); err == nil {
		t.Error("expected dimension error")
	}
	if _, _, err := ix.PartialMatch([]float64{0.5, 0.5, 0.5}, -1); err == nil {
		t.Error("expected tolerance error")
	}
	if _, _, err := ix.PartialMatch([]float64{Wildcard, Wildcard, Wildcard}, 0.1); err == nil {
		t.Error("expected no-dimension error")
	}
}

func TestRangeQueryBucketsCostModel(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 4, Disks: 4, CostModel: BucketPages}, 1500)
	got, stats, err := ix.RangeQuery(
		[]float64{0, 0, 0, 0}, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1500 {
		t.Errorf("full-space range returned %d of 1500", len(got))
	}
	if stats.Cells < 1 {
		t.Errorf("no cells accounted: %+v", stats)
	}
}
