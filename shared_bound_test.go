package parsearch

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"parsearch/internal/data"
)

// Tests of the cooperative cross-disk pruning (see DESIGN.md
// "Cooperative pruning"): the shared bound is a pure optimization, so
// a shared-bound index and an independent one built from the same data
// must be indistinguishable through the query API — identical results,
// identical errors, identical executed page costs — with the pruning
// visible only in QueryStats.PagesSavedByBound. The battery sweeps
// every declustering strategy crossed with replication and a failed
// disk, because the bound interacts with the seeding probe (home-disk
// assignment differs per strategy) and with failure routing.

// boundPair builds two indexes over the same points, differing only in
// DisableSharedBound.
func boundPair(t *testing.T, opts Options, raw [][]float64) (shared, indep *Index) {
	t.Helper()
	build := func(disable bool) *Index {
		o := opts
		o.DisableSharedBound = disable
		ix, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		return ix
	}
	return build(false), build(true)
}

// checkBoundInvariants asserts the accounting identity between one
// shared-bound query and its independent twin: the shared side's
// visited+saved pages reproduce the independent traversal exactly
// (phantom accounting), the saving is never negative, and the executed
// I/O (phase 2) is untouched by the bound.
func checkBoundInvariants(t *testing.T, label string, sS, sI QueryStats) {
	t.Helper()
	if sS.SearchPages+sS.PagesSavedByBound != sI.SearchPages {
		t.Errorf("%s: visited %d + saved %d != independent visited %d",
			label, sS.SearchPages, sS.PagesSavedByBound, sI.SearchPages)
	}
	if sS.SearchPages > sI.SearchPages {
		t.Errorf("%s: shared visited %d pages, independent %d — bound added work",
			label, sS.SearchPages, sI.SearchPages)
	}
	if sI.PagesSavedByBound != 0 || sI.BoundTightenings != 0 {
		t.Errorf("%s: independent path reported bound activity: saved %d, tightened %d",
			label, sI.PagesSavedByBound, sI.BoundTightenings)
	}
	if sS.TotalPages != sI.TotalPages {
		t.Errorf("%s: executed pages %d vs %d — the bound must not change phase-2 I/O",
			label, sS.TotalPages, sI.TotalPages)
	}
	if !reflect.DeepEqual(sS.PagesPerDisk, sI.PagesPerDisk) {
		t.Errorf("%s: per-disk pages %v vs %v", label, sS.PagesPerDisk, sI.PagesPerDisk)
	}
	if sS.Degraded != sI.Degraded {
		t.Errorf("%s: degraded %v vs %v", label, sS.Degraded, sI.Degraded)
	}
}

// TestSharedBoundEquivalenceBattery sweeps all six declustering
// strategies × replication on/off × a failed disk × k ∈ {1, 5, n} and
// requires the shared-bound results to be identical — not merely
// equally near — to the independent path, and (on non-degraded
// configurations) to a brute-force linear scan.
func TestSharedBoundEquivalenceBattery(t *testing.T) {
	const d, n, disks = 6, 400, 5
	pts := data.Uniform(n, d, 7)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	queries := data.Uniform(6, d, 8)

	for _, kind := range []Kind{NearOptimal, Hilbert, DiskModulo, FX, RoundRobin, DirectOnly} {
		for _, repl := range []int{0, 1} {
			for _, fail := range []bool{false, true} {
				label := fmt.Sprintf("%s/repl=%d/fail=%v", kind, repl, fail)
				shared, indep := boundPair(t,
					Options{Dim: d, Disks: disks, Kind: kind, Replication: repl}, raw)
				if fail {
					for _, ix := range []*Index{shared, indep} {
						if err := ix.FailDisk(1); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
					}
				}
				// Without replication a failed disk's data is simply
				// gone; the results are best-effort but must still be
				// the *same* best effort on both paths.
				exact := !fail || repl == 1

				for _, k := range []int{1, 5, n} {
					for qi, q := range queries {
						resS, stS, errS := shared.KNN(q, k)
						resI, stI, errI := indep.KNN(q, k)
						ql := fmt.Sprintf("%s/k=%d/q=%d", label, k, qi)
						if !errors.Is(errS, errI) && !errors.Is(errI, errS) {
							t.Fatalf("%s: errors differ: %v vs %v", ql, errS, errI)
						}
						if errS != nil {
							continue
						}
						if !reflect.DeepEqual(resS, resI) {
							t.Fatalf("%s: shared and independent results differ", ql)
						}
						checkBoundInvariants(t, ql, stS, stI)
						if exact {
							want := linearKNN(pts, q, k)
							if len(resS) != len(want) {
								t.Fatalf("%s: %d results, want %d", ql, len(resS), len(want))
							}
							for i := range resS {
								if math.Abs(resS[i].Dist-want[i]) > 1e-9 {
									t.Fatalf("%s: result %d dist %v, want %v",
										ql, i, resS[i].Dist, want[i])
								}
							}
						}
					}
				}

				// The batch path shares the per-item bound machinery;
				// one batch per configuration keeps it honest too.
				resS, bsS, errS := shared.BatchKNN(queries, 5)
				resI, bsI, errI := indep.BatchKNN(queries, 5)
				if (errS == nil) != (errI == nil) {
					t.Fatalf("%s: batch errors differ: %v vs %v", label, errS, errI)
				}
				if errS == nil {
					if !reflect.DeepEqual(resS, resI) {
						t.Fatalf("%s: batch results differ", label)
					}
					if bsS.SearchPages+bsS.PagesSavedByBound != bsI.SearchPages {
						t.Errorf("%s: batch visited %d + saved %d != independent %d",
							label, bsS.SearchPages, bsS.PagesSavedByBound, bsI.SearchPages)
					}
					if bsS.TotalPages != bsI.TotalPages {
						t.Errorf("%s: batch executed pages %d vs %d",
							label, bsS.TotalPages, bsI.TotalPages)
					}
				}
			}
		}
	}
}

// TestSharedBoundMonotonicity drives 200 seeded queries through a
// 16-disk pair and checks, per query, that the shared bound never
// visits more search pages than the independent search and that
// PagesSavedByBound accounts for the difference exactly; over the
// whole run the bound must actually save something.
func TestSharedBoundMonotonicity(t *testing.T) {
	const d, n, disks = 8, 3000, 16
	pts := data.Uniform(n, d, 21)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	shared, indep := boundPair(t, Options{Dim: d, Disks: disks}, raw)

	totalSaved := 0
	for qi, q := range data.Uniform(200, d, 22) {
		resS, stS, err := shared.KNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		resI, stI, err := indep.KNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resS, resI) {
			t.Fatalf("query %d: results differ", qi)
		}
		checkBoundInvariants(t, fmt.Sprintf("query %d", qi), stS, stI)
		if stS.PagesSavedByBound != stI.SearchPages-stS.SearchPages {
			t.Fatalf("query %d: saved %d, observed difference %d",
				qi, stS.PagesSavedByBound, stI.SearchPages-stS.SearchPages)
		}
		totalSaved += stS.PagesSavedByBound
	}
	if totalSaved <= 0 {
		t.Fatalf("200 queries saved %d pages — the bound never pruned", totalSaved)
	}

	// The registry mirrors the per-query stats.
	m := shared.Metrics()
	if m.PagesSavedByBound != int64(totalSaved) {
		t.Errorf("registry saved %d pages, queries observed %d", m.PagesSavedByBound, totalSaved)
	}
	if m.SearchPages <= 0 || m.BoundTightenings <= 0 {
		t.Errorf("registry search pages %d, tightenings %d", m.SearchPages, m.BoundTightenings)
	}
}

// TestApproxExactParityBattery extends the equivalence battery to the
// approximate tier: with the knobs at their exact settings (ε=0,
// recall_target=1) an LSH-equipped index must answer byte-identically
// to plain KNN across every strategy × replication × failed-disk
// configuration — results and deterministic stats both (the
// visited/saved split is timing-dependent between invocations, so the
// parity check compares the sum, like checkBoundInvariants). And with
// the knobs engaged, approximation composes with failure: the result
// set is exactly as long as the exact path's over the same reachable
// data, never silently shorter.
func TestApproxExactParityBattery(t *testing.T) {
	const d, n, disks = 6, 400, 5
	pts := data.Uniform(n, d, 31)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	queries := data.Uniform(5, d, 32)

	for _, kind := range []Kind{NearOptimal, Hilbert, DiskModulo, FX, RoundRobin, DirectOnly} {
		for _, repl := range []int{0, 1} {
			for _, fail := range []bool{false, true} {
				label := fmt.Sprintf("%s/repl=%d/fail=%v", kind, repl, fail)
				ix, err := Open(Options{Dim: d, Disks: disks, Kind: kind,
					Replication: repl, LSH: true})
				if err != nil {
					t.Fatal(err)
				}
				if err := ix.Build(raw); err != nil {
					t.Fatal(err)
				}
				if fail {
					if err := ix.FailDisk(1); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
				for _, k := range []int{1, 5, n} {
					for qi, q := range queries {
						ql := fmt.Sprintf("%s/k=%d/q=%d", label, k, qi)
						resE, stE, errE := ix.KNN(q, k)
						resA, stA, errA := ix.KNNApprox(q, k, Approx{Epsilon: 0, RecallTarget: 1})
						if !errors.Is(errA, errE) && !errors.Is(errE, errA) {
							t.Fatalf("%s: errors differ: exact %v, approx-zero %v", ql, errE, errA)
						}
						if errE != nil {
							continue
						}
						if !reflect.DeepEqual(resA, resE) {
							t.Fatalf("%s: ε=0/recall_target=1 results differ from exact", ql)
						}
						if stA.TotalPages != stE.TotalPages || stA.MaxPages != stE.MaxPages ||
							!reflect.DeepEqual(stA.PagesPerDisk, stE.PagesPerDisk) ||
							stA.Degraded != stE.Degraded {
							t.Fatalf("%s: deterministic stats differ:\nexact %+v\napprox %+v", ql, stE, stA)
						}
						if stA.SearchPages+stA.PagesSavedByBound != stE.SearchPages+stE.PagesSavedByBound {
							t.Fatalf("%s: independent-cost sum %d vs %d", ql,
								stA.SearchPages+stA.PagesSavedByBound, stE.SearchPages+stE.PagesSavedByBound)
						}
						for who, st := range map[string]QueryStats{"exact": stE, "approx-zero": stA} {
							if st.PagesSkippedApprox != 0 || st.ProbePages != 0 || st.EffectiveEpsilon != 0 {
								t.Fatalf("%s: %s path reported approx activity: %+v", ql, who, st)
							}
						}

						// Knobs engaged under the same (possibly failed)
						// configuration: exactly as many neighbors as the
						// exact path found reachable — approximation may
						// return different points, never fewer.
						resX, stX, errX := ix.KNNApprox(q, k, Approx{Epsilon: 0.4, RecallTarget: 0.6})
						if errX != nil {
							t.Fatalf("%s: approx query failed where exact succeeded: %v", ql, errX)
						}
						if len(resX) != len(resE) {
							t.Fatalf("%s: approx returned %d neighbors, exact found %d reachable — silently short",
								ql, len(resX), len(resE))
						}
						if stX.EffectiveEpsilon != 0.4 {
							t.Fatalf("%s: EffectiveEpsilon %v, want 0.4", ql, stX.EffectiveEpsilon)
						}
					}
				}
			}
		}
	}
}

// TestNNDegradedToEmpty pins the NN empty-result edge: when every live
// copy of the data is on a failed disk, NN must surface ErrUnavailable
// (not index into an empty result slice), and an empty index still
// reports ErrEmpty.
func TestNNDegradedToEmpty(t *testing.T) {
	ix, err := Open(Options{Dim: 2, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build([][]float64{{0.1, 0.2}, {0.8, 0.9}}); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		if err := ix.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, stats, err := ix.NN([]float64{0.5, 0.5}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("NN on fully failed index: err = %v, want ErrUnavailable", err)
	} else if !stats.Degraded {
		t.Error("NN on fully failed index not flagged Degraded")
	}
	if _, _, err := ix.KNN([]float64{0.5, 0.5}, 3); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("KNN on fully failed index: err = %v, want ErrUnavailable", err)
	}

	empty, err := Open(Options{Dim: 2, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := empty.NN([]float64{0.5, 0.5}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("NN on empty index: err = %v, want ErrEmpty", err)
	}
}
