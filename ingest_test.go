package parsearch

import (
	"errors"
	"reflect"
	"testing"

	"parsearch/internal/data"
	"parsearch/internal/fsx"
)

func TestInsertBatchAssignsSequentialIDs(t *testing.T) {
	ix, err := Open(Options{Dim: 3, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(uniformPoints(10, 3, 1)); err != nil {
		t.Fatal(err)
	}
	batch := uniformPoints(25, 3, 2)
	ids, err := ix.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != 10+i {
			t.Fatalf("id[%d] = %d, want %d", i, id, 10+i)
		}
	}
	if ix.Len() != 35 {
		t.Fatalf("Len = %d, want 35", ix.Len())
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Metrics().IngestBatches; got != 1 {
		t.Fatalf("ingest_batches = %d, want 1", got)
	}
	// Empty and mismatched batches.
	if ids, err := ix.InsertBatch(nil); ids != nil || err != nil {
		t.Fatalf("empty batch: ids %v, err %v", ids, err)
	}
	if _, err := ix.InsertBatch([][]float64{{1, 2}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestInsertBatchDurableGroupCommit(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]float64, 40)
	for i := range batch {
		batch[i] = durPoint(i, 3)
	}
	if _, err := ix.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	// SyncAlways: the whole batch is durable when InsertBatch returns.
	if lag := ix.Durability().WALLagBytes; lag != 0 {
		t.Fatalf("WAL lag %d bytes after acknowledged batch", lag)
	}
	want := tableOf(ix)
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if got := tableOf(re); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered table differs from batched inserts")
	}
	// The batch rides the log as individual records (log-before-apply
	// per mutation), but costs one group commit, not forty.
	if re.Recovery().Records < 40 {
		t.Fatalf("recovery saw %d records, want >= 40", re.Recovery().Records)
	}
}

func TestInsertBatchAppliedPrefixOnWALFailure(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(0, 3)); err != nil {
		t.Fatal(err)
	}
	// Fail a write somewhere inside the batch's log traffic.
	fs.FailWriteAt(fs.TotalWritten() + 40)
	batch := make([][]float64, 30)
	for i := range batch {
		batch[i] = durPoint(100+i, 3)
	}
	ids, err := ix.InsertBatch(batch)
	if err == nil {
		t.Fatal("batch across an injected write error reported full success")
	}
	if len(ids) > len(batch) {
		t.Fatalf("returned %d ids for a %d-point batch", len(ids), len(batch))
	}
	// The applied prefix is real: it is in the index and queryable.
	if got, want := ix.Len(), 1+len(ids); got != want {
		t.Fatalf("Len = %d, want %d (initial + applied prefix)", got, want)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncWriterAcksAndFlushes(t *testing.T) {
	ix, err := Open(Options{Dim: 3, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	aw := NewAsyncWriter(ix, AsyncConfig{MaxBatch: 8})
	defer aw.Close()

	pts := data.Uniform(60, 3, 9)
	pending := make([]*Pending, len(pts))
	for i, p := range pts {
		pend, err := aw.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = pend
	}
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	ids := make(map[int]bool)
	for i, pend := range pending {
		select {
		case <-pend.Done():
		default:
			t.Fatalf("pending %d unresolved after Flush", i)
		}
		id, err := pend.Wait()
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if ids[id] {
			t.Fatalf("id %d assigned twice", id)
		}
		ids[id] = true
	}
	if ix.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(pts))
	}

	// Deletes resolve per-op: a bogus id fails on its own handle
	// without poisoning the rest of the batch.
	good, err := aw.Delete(0)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := aw.Delete(99999)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := good.Wait(); err != nil {
		t.Fatalf("valid delete: %v", err)
	}
	if _, err := bad.Wait(); err == nil {
		t.Fatal("delete of a nonexistent id acked success")
	}
	if ix.Len() != len(pts)-1 {
		t.Fatalf("Len = %d after delete, want %d", ix.Len(), len(pts)-1)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncWriterDurableAckIsDurable(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	aw := NewAsyncWriter(ix, AsyncConfig{MaxBatch: 16})
	var pending []*Pending
	for i := 0; i < 30; i++ {
		pend, err := aw.Insert(durPoint(i, 3))
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, pend)
	}
	for _, pend := range pending {
		if _, err := pend.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	// Every acknowledged mutation recovers — no Close of the index, so
	// this is entirely the group commits' doing.
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 30 {
		t.Fatalf("recovered %d points, want 30", re.Len())
	}
}

func TestAsyncWriterCloseRefusesNewWork(t *testing.T) {
	ix, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	aw := NewAsyncWriter(ix, AsyncConfig{})
	if _, err := aw.Insert([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := aw.Insert([]float64{4, 5, 6}); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after Close: %v, want ErrClosed", err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	// The accepted insert was drained before Close returned.
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (accepted op drained on Close)", ix.Len())
	}
}

func TestAsyncWriterValidatesDimension(t *testing.T) {
	ix, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	aw := NewAsyncWriter(ix, AsyncConfig{})
	defer aw.Close()
	if _, err := aw.Insert([]float64{1}); err == nil {
		t.Fatal("wrong-dimension insert accepted")
	}
}
