package parsearch

import (
	"math"
	"testing"

	"parsearch/internal/data"
)

func metricDist(m Metric, a, b []float64) float64 {
	switch m {
	case Manhattan:
		s := 0.0
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case Maximum:
		s := 0.0
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > s {
				s = d
			}
		}
		return s
	default:
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
}

func TestMetricOptionValidation(t *testing.T) {
	if _, err := Open(Options{Dim: 4, Disks: 2, Metric: "cosine"}); err == nil {
		t.Error("unknown metric accepted")
	}
	for _, m := range []Metric{Euclidean, Manhattan, Maximum, ""} {
		if _, err := Open(Options{Dim: 4, Disks: 2, Metric: m}); err != nil {
			t.Errorf("metric %q rejected: %v", m, err)
		}
	}
}

func TestKNNUnderAllMetrics(t *testing.T) {
	const d, n, k = 6, 2000, 8
	pts := data.Uniform(n, d, 91)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	queries := data.Uniform(10, d, 92)

	for _, m := range []Metric{Euclidean, Manhattan, Maximum} {
		ix, err := Open(Options{Dim: d, Disks: 4, Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			got, _, err := ix.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			// Ground truth under the metric.
			want := make([]float64, n)
			for i, p := range raw {
				want[i] = metricDist(m, q, p)
			}
			// Selection sort of the k smallest.
			for i := 0; i < k; i++ {
				minIdx := i
				for j := i + 1; j < n; j++ {
					if want[j] < want[minIdx] {
						minIdx = j
					}
				}
				want[i], want[minIdx] = want[minIdx], want[i]
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("%s: rank %d dist %v, want %v", m, i, got[i].Dist, want[i])
				}
			}
		}
	}
}

func TestMetricsDisagreeWhereExpected(t *testing.T) {
	// Points chosen so L1 and L∞ rank them differently from L2.
	raw := [][]float64{
		{0.30, 0.00}, // L2 0.30, L1 0.30, Linf 0.30
		{0.22, 0.22}, // L2 0.311, L1 0.44, Linf 0.22
	}
	q := []float64{0, 0}

	nnUnder := func(m Metric) int {
		ix, err := Open(Options{Dim: 2, Disks: 2, Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		nb, _, err := ix.NN(q)
		if err != nil {
			t.Fatal(err)
		}
		return nb.ID
	}
	if got := nnUnder(Euclidean); got != 0 {
		t.Errorf("L2 NN = %d, want 0", got)
	}
	if got := nnUnder(Manhattan); got != 0 {
		t.Errorf("L1 NN = %d, want 0", got)
	}
	if got := nnUnder(Maximum); got != 1 {
		t.Errorf("Linf NN = %d, want 1", got)
	}
}

func TestBrowseUnderManhattan(t *testing.T) {
	const d, n = 4, 500
	pts := data.Uniform(n, d, 93)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	ix, err := Open(Options{Dim: d, Disks: 4, Metric: Manhattan})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	q := data.Uniform(1, d, 94)[0]
	b, err := ix.Browse(q)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	prev := -1.0
	for i := 0; i < 50; i++ {
		nb, ok := b.Next()
		if !ok {
			t.Fatal("ranking exhausted early")
		}
		if nb.Dist < prev {
			t.Fatalf("ranking not monotone under L1: %v after %v", nb.Dist, prev)
		}
		if math.Abs(nb.Dist-metricDist(Manhattan, q, nb.Point)) > 1e-9 {
			t.Fatalf("reported distance wrong under L1")
		}
		prev = nb.Dist
	}
}
