package parsearch_test

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"parsearch"
)

// examplePoints builds a small deterministic data set.
func examplePoints(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func Example() {
	ix, err := parsearch.Open(parsearch.Options{Dim: 4, Disks: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(examplePoints(1000, 4)); err != nil {
		log.Fatal(err)
	}
	neighbors, stats, err := ix.KNN([]float64{0.5, 0.5, 0.5, 0.5}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("neighbors:", len(neighbors))
	fmt.Println("disks involved:", len(stats.PagesPerDisk))
	// Output:
	// neighbors: 3
	// disks involved: 4
}

func ExampleIndex_Browse() {
	ix, err := parsearch.Open(parsearch.Options{Dim: 2, Disks: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build([][]float64{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}}); err != nil {
		log.Fatal(err)
	}
	b, err := ix.Browse([]float64{0.45, 0.45})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	for {
		nb, ok := b.Next()
		if !ok {
			break
		}
		fmt.Printf("id %d at %.2f\n", nb.ID, nb.Dist)
	}
	// Output:
	// id 1 at 0.07
	// id 0 at 0.49
	// id 2 at 0.64
}

func ExampleIndex_PartialMatch() {
	ix, err := parsearch.Open(parsearch.Options{Dim: 3, Disks: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build([][]float64{
		{0.50, 0.10, 0.90},
		{0.50, 0.80, 0.20},
		{0.10, 0.80, 0.50},
	}); err != nil {
		log.Fatal(err)
	}
	// First coordinate must be 0.5 (+/- 0.01); the rest are wildcards.
	matches, _, err := ix.PartialMatch([]float64{0.5, parsearch.Wildcard, parsearch.Wildcard}, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Println("id", m.ID)
	}
	// Output:
	// id 0
	// id 1
}

func ExampleIndex_Save() {
	ix, err := parsearch.Open(parsearch.Options{Dim: 2, Disks: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build([][]float64{{0.2, 0.4}, {0.6, 0.8}}); err != nil {
		log.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := parsearch.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored vectors:", restored.Len())
	// Output:
	// restored vectors: 2
}

func ExampleIndex_VerifyDeclustering() {
	// In 3 dimensions with 4 disks the paper's coloring is strictly
	// near-optimal; the Hilbert baseline is not (Lemma 1).
	near, _ := parsearch.Open(parsearch.Options{Dim: 3, Disks: 4})
	hil, _ := parsearch.Open(parsearch.Options{Dim: 3, Disks: 4, Kind: parsearch.Hilbert})

	v, _ := near.VerifyDeclustering(0)
	fmt.Println("near-optimal violations:", len(v))
	v, _ = hil.VerifyDeclustering(0)
	fmt.Println("hilbert violations:", len(v) > 0)
	// Output:
	// near-optimal violations: 0
	// hilbert violations: true
}
