// Imagesearch: content-based image retrieval with color histograms — the
// paper's motivating application [Fal 94]. Synthetic "images" are
// generated as mixtures of a few dominant colors; each image is reduced
// to a color-histogram feature vector, indexed with the parallel
// similarity index, and queried for look-alikes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"parsearch"
)

// imageClass describes a family of images sharing dominant colors
// (sunsets, forests, oceans, ...).
type imageClass struct {
	name string
	// hues are the dominant color-bin centers of the class.
	hues []int
}

const histogramBins = 16

var classes = []imageClass{
	{name: "sunset", hues: []int{0, 1, 2}},
	{name: "forest", hues: []int{5, 6, 7}},
	{name: "ocean", hues: []int{9, 10, 11}},
	{name: "night", hues: []int{13, 14, 15}},
	{name: "desert", hues: []int{1, 3, 4}},
	{name: "meadow", hues: []int{4, 6, 8}},
}

// renderHistogram synthesizes the color histogram of one image of the
// class: most pixel mass in the class's dominant hues, the rest spread
// randomly (objects, noise).
func renderHistogram(rng *rand.Rand, c imageClass) []float64 {
	h := make([]float64, histogramBins)
	const pixels = 4096
	for p := 0; p < pixels; p++ {
		if rng.Float64() < 0.8 {
			h[c.hues[rng.Intn(len(c.hues))]]++
		} else {
			h[rng.Intn(histogramBins)]++
		}
	}
	for i := range h {
		h[i] /= pixels
	}
	return h
}

func main() {
	const (
		imagesPerClass = 4000
		disks          = 16
	)
	rng := rand.New(rand.NewSource(7))

	// "Extract features" from the image library.
	var histograms [][]float64
	var labels []string
	for _, c := range classes {
		for i := 0; i < imagesPerClass; i++ {
			histograms = append(histograms, renderHistogram(rng, c))
			labels = append(labels, fmt.Sprintf("%s-%04d", c.name, i))
		}
	}

	// Color histograms are skewed (most mass in few bins), so enable
	// the paper's quantile-split extension.
	ix, err := parsearch.Open(parsearch.Options{
		Dim:            histogramBins,
		Disks:          disks,
		QuantileSplits: true,
		Baseline:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(histograms); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image library: %d images in %d classes, %d-bin histograms, %d disks\n\n",
		ix.Len(), len(classes), histogramBins, disks)

	// Query: find images similar to a fresh sunset shot.
	query := renderHistogram(rng, classes[0])
	neighbors, stats, err := ix.KNN(query, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("images most similar to a new sunset photograph:")
	correct := 0
	for rank, nb := range neighbors {
		fmt.Printf("  #%d: %-12s dist=%.4f\n", rank+1, labels[nb.ID], nb.Dist)
		if labels[nb.ID][:6] == "sunset" {
			correct++
		}
	}
	fmt.Printf("\n%d of %d results are sunsets\n", correct, len(neighbors))
	fmt.Printf("bottleneck disk read %d of %d pages -> speed-up %.1fx\n",
		stats.MaxPages, stats.TotalPages, stats.BaselineSpeedup)
}
