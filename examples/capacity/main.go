// Capacity: size a parallel similarity-search deployment. Given an
// expected query mix, ServiceDemands reports how much disk time each
// query costs per disk; feeding those demands through a queueing
// simulation shows the response times a disk configuration sustains at a
// target arrival rate — the throughput view the paper's conclusion names
// as future work.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"parsearch"
)

func main() {
	const (
		dim        = 10
		n          = 60000
		targetRate = 250.0 // queries per second the service must sustain
	)
	// A modern flash array: ~100 µs positioning, ~20 µs per 4-KByte
	// block (the default parameters model the paper's 1997 disks).
	ssd := parsearch.DiskParams{Seek: 100 * time.Microsecond, Transfer: 20 * time.Microsecond}
	rng := rand.New(rand.NewSource(5))
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		points[i] = p
	}
	queries := make([][]float64, 200)
	for i := range queries {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		queries[i] = q
	}

	fmt.Printf("workload: %d vectors (d=%d), target %.0f 10-NN queries/s\n\n", n, dim, targetRate)
	fmt.Printf("%-8s %-14s %-16s %-14s\n", "disks", "saturation/s", "mean resp (ms)", "verdict")
	for _, disks := range []int{2, 4, 8, 16} {
		ix, err := parsearch.Open(parsearch.Options{Dim: dim, Disks: disks, DiskParams: &ssd})
		if err != nil {
			log.Fatal(err)
		}
		if err := ix.Build(points); err != nil {
			log.Fatal(err)
		}
		demands, err := ix.ServiceDemands(queries, 10)
		if err != nil {
			log.Fatal(err)
		}
		saturation := saturationRate(demands)
		mean := meanResponse(demands, targetRate, rng)
		verdict := "OK"
		if saturation < targetRate {
			verdict = "saturates — add disks"
		} else if mean > 0.1 {
			verdict = "queueing heavily"
		}
		fmt.Printf("%-8d %-14.1f %-16.1f %s\n", disks, saturation, mean*1000, verdict)
	}
}

// saturationRate is the highest sustainable arrival rate: queries per
// unit of the bottleneck disk's total demand.
func saturationRate(demands [][]float64) float64 {
	if len(demands) == 0 {
		return math.Inf(1)
	}
	perDisk := make([]float64, len(demands[0]))
	for _, q := range demands {
		for d, v := range q {
			perDisk[d] += v
		}
	}
	worst := 0.0
	for _, v := range perDisk {
		worst = math.Max(worst, v)
	}
	if worst == 0 {
		return math.Inf(1)
	}
	return float64(len(demands)) / worst
}

// meanResponse simulates a Poisson stream over FCFS disks (each query
// completes when its slowest disk share finishes) and returns the mean
// response time in seconds.
func meanResponse(demands [][]float64, rate float64, rng *rand.Rand) float64 {
	disks := len(demands[0])
	diskFree := make([]float64, disks)
	arrival := 0.0
	var responses []float64
	// Repeat the query mix a few times so queues reach steady state.
	for round := 0; round < 5; round++ {
		for _, q := range demands {
			arrival += rng.ExpFloat64() / rate
			completion := arrival
			for d, demand := range q {
				if demand <= 0 {
					continue
				}
				start := math.Max(diskFree[d], arrival)
				diskFree[d] = start + demand
				completion = math.Max(completion, diskFree[d])
			}
			responses = append(responses, completion-arrival)
		}
	}
	sort.Float64s(responses)
	sum := 0.0
	for _, r := range responses {
		sum += r
	}
	return sum / float64(len(responses))
}
