// Textsearch: approximate substring similarity over documents via text
// descriptors — one of the paper's evaluation workloads. Each document
// snippet is mapped to a hashed letter-trigram histogram; snippets with
// similar wording land close together in feature space, so k-NN search
// retrieves near-duplicates and paraphrases.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"parsearch"
)

const descriptorDim = 16

// descriptor maps a snippet to its hashed trigram histogram.
func descriptor(text string) []float64 {
	t := strings.ToLower(text)
	h := make([]float64, descriptorDim)
	for i := 0; i+3 <= len(t); i++ {
		v := uint32(2166136261)
		for j := i; j < i+3; j++ {
			v ^= uint32(t[j])
			v *= 16777619
		}
		h[v%descriptorDim]++
	}
	if len(t) >= 3 {
		for i := range h {
			h[i] /= float64(len(t) - 2)
		}
	}
	return h
}

// vocabulary per topic; snippets are random word sequences.
var topics = map[string][]string{
	"databases": {"index", "query", "page", "disk", "transaction", "join", "tree", "bucket", "tuple", "scan"},
	"sailing":   {"wind", "sail", "hull", "port", "starboard", "anchor", "tide", "knot", "mast", "harbor"},
	"cooking":   {"flour", "butter", "simmer", "saute", "garlic", "oven", "season", "whisk", "broth", "tender"},
	"astronomy": {"star", "orbit", "galaxy", "telescope", "nebula", "planet", "eclipse", "comet", "lunar", "flux"},
}

func snippet(rng *rand.Rand, words []string) string {
	out := make([]string, 24)
	for i := range out {
		out[i] = words[rng.Intn(len(words))]
	}
	return strings.Join(out, " ")
}

func main() {
	const snippetsPerTopic = 6000
	rng := rand.New(rand.NewSource(3))

	var vectors [][]float64
	var texts []string
	var labels []string
	for topic, words := range topics {
		for i := 0; i < snippetsPerTopic; i++ {
			s := snippet(rng, words)
			vectors = append(vectors, descriptor(s))
			texts = append(texts, s)
			labels = append(labels, topic)
		}
	}

	ix, err := parsearch.Open(parsearch.Options{
		Dim:            descriptorDim,
		Disks:          16,
		QuantileSplits: true, // trigram histograms are skewed
		Baseline:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(vectors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d snippets from %d topics as %d-dimensional text descriptors\n\n",
		ix.Len(), len(topics), descriptorDim)

	query := "the query touched every page of the index tree before the disk scan finished"
	neighbors, stats, err := ix.KNN(descriptor(query), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %q\n\nmost similar stored snippets:\n", query)
	for rank, nb := range neighbors {
		text := texts[nb.ID]
		if len(text) > 60 {
			text = text[:60] + "..."
		}
		fmt.Printf("  #%d [%-9s] dist=%.4f  %s\n", rank+1, labels[nb.ID], nb.Dist, text)
	}
	fmt.Printf("\nbottleneck disk read %d of %d pages -> speed-up %.1fx\n",
		stats.MaxPages, stats.TotalPages, stats.BaselineSpeedup)
}
