// Quickstart: build a parallel similarity index over random feature
// vectors and run a k-nearest-neighbor query.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"parsearch"
)

func main() {
	const (
		dim   = 8
		disks = 8
		n     = 20000
	)

	// Open an index: 8-dimensional vectors declustered over 8 simulated
	// disks with the paper's near-optimal strategy (the default).
	ix, err := parsearch.Open(parsearch.Options{
		Dim:      dim,
		Disks:    disks,
		Baseline: true, // keep a sequential X-tree to report speed-up
	})
	if err != nil {
		log.Fatal(err)
	}

	// Index some feature vectors. Vector i receives ID i.
	rng := rand.New(rand.NewSource(1))
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		points[i] = p
	}
	if err := ix.Build(points); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors on %d disks (strategy %q)\n", ix.Len(), ix.Disks(), ix.Strategy())
	fmt.Printf("points per disk: %v\n\n", ix.DiskLoads())

	// Query: the 5 nearest neighbors of a random point.
	query := make([]float64, dim)
	for j := range query {
		query[j] = rng.Float64()
	}
	neighbors, stats, err := ix.KNN(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	for rank, nb := range neighbors {
		fmt.Printf("#%d: id=%5d dist=%.4f\n", rank+1, nb.ID, nb.Dist)
	}
	fmt.Printf("\npages read per disk: %v\n", stats.PagesPerDisk)
	fmt.Printf("bottleneck disk read %d pages (total %d) -> speed-up %.1fx over a sequential X-tree\n",
		stats.MaxPages, stats.TotalPages, stats.BaselineSpeedup)

	// Dynamic inserts work too.
	id, err := ix.Insert(query)
	if err != nil {
		log.Fatal(err)
	}
	nearest, _, err := ix.NN(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter inserting the query itself as id %d, its NN is id %d at distance %.4f\n",
		id, nearest.ID, nearest.Dist)
}
