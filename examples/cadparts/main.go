// Cadparts: similarity search over CAD part contours via Fourier
// descriptors — the paper's industrial-parts workload, including its
// hardest case: thousands of *variants of the same part*, which cluster
// so tightly that naive declustering puts nearly everything on one disk.
// The example contrasts the basic technique with the paper's §4.3
// extensions (median splits + recursive declustering of overloaded
// disks).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"parsearch"
)

const (
	contourSamples = 64
	descriptorDim  = 12
)

// part is a parametrized 2-D contour: a base radius modulated by lobes
// (teeth, flanges) and eccentricity.
type part struct {
	lobes int
	depth float64
	ecc   float64
}

// descriptor samples the part's contour and returns the magnitudes of
// its first Fourier coefficients — rotation-invariant shape features.
func (p part) descriptor(phase float64) []float64 {
	radius := make([]float64, contourSamples)
	for s := range radius {
		th := 2*math.Pi*float64(s)/contourSamples + phase
		radius[s] = 1 + p.depth*math.Abs(math.Cos(float64(p.lobes)*th/2)) + p.ecc*math.Cos(th)
	}
	out := make([]float64, descriptorDim)
	for k := 1; k <= descriptorDim; k++ {
		var re, im float64
		for s, x := range radius {
			angle := -2 * math.Pi * float64(k) * float64(s) / contourSamples
			re += x * math.Cos(angle)
			im += x * math.Sin(angle)
		}
		out[k-1] = math.Hypot(re, im) / contourSamples
	}
	return out
}

// variant jitters the base part's parameters: revision i of the part.
func (p part) variant(rng *rand.Rand) part {
	return part{
		lobes: p.lobes,
		depth: p.depth * (1 + 0.05*rng.NormFloat64()),
		ecc:   p.ecc + 0.02*rng.NormFloat64(),
	}
}

// normalize rescales every descriptor dimension onto [0,1] — the index's
// data space is the unit cube.
func normalize(vectors [][]float64) {
	d := len(vectors[0])
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vectors {
			lo = math.Min(lo, v[j])
			hi = math.Max(hi, v[j])
		}
		if hi == lo {
			for _, v := range vectors {
				v[j] = 0.5
			}
			continue
		}
		for _, v := range vectors {
			v[j] = (v[j] - lo) / (hi - lo)
		}
	}
}

func maxLoad(loads []int) int {
	m := 0
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

func main() {
	const (
		variants = 30000
		disks    = 16
	)
	rng := rand.New(rand.NewSource(11))
	base := part{lobes: 6, depth: 0.35, ecc: 0.1} // one gear-like part

	// The archive: tens of thousands of revisions of the same part.
	vectors := make([][]float64, variants)
	for i := range vectors {
		vectors[i] = base.variant(rng).descriptor(2 * math.Pi * rng.Float64())
	}
	normalize(vectors)

	// Engineers retrieving all close revisions of a candidate design:
	// 50-NN queries at stored parts.
	queries := make([][]float64, 10)
	for i := range queries {
		q := make([]float64, descriptorDim)
		copy(q, vectors[rng.Intn(len(vectors))])
		queries[i] = q
	}

	run := func(name string, opts parsearch.Options) {
		ix, err := parsearch.Open(opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := ix.Build(vectors); err != nil {
			log.Fatal(err)
		}
		var maxPages, ms, nearest float64
		for _, q := range queries {
			neighbors, stats, err := ix.KNN(q, 50)
			if err != nil {
				log.Fatal(err)
			}
			maxPages += float64(stats.MaxPages)
			ms += stats.ParallelTime * 1000
			nearest += neighbors[1].Dist // [0] is the stored query itself
		}
		m := float64(len(queries))
		fmt.Printf("%s:\n", name)
		fmt.Printf("  heaviest disk holds %d of %d parts (ideal %d)\n",
			maxLoad(ix.DiskLoads()), ix.Len(), ix.Len()/disks)
		fmt.Printf("  50-NN queries: avg nearest-revision dist=%.4f, bottleneck %.1f pages, %.2f ms simulated\n\n",
			nearest/m, maxPages/m, ms/m)
	}

	fmt.Printf("CAD archive: %d variants of one part, %d-dim Fourier descriptors, %d disks\n\n",
		variants, descriptorDim, disks)
	run("basic near-optimal declustering", parsearch.Options{
		Dim: descriptorDim, Disks: disks,
	})
	run("with quantile splits + recursive declustering (paper §4.3)", parsearch.Options{
		Dim: descriptorDim, Disks: disks,
		QuantileSplits: true,
		Recursive:      true,
	})
}
