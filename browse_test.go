package parsearch

import (
	"math"
	"sort"
	"testing"

	"parsearch/internal/data"
	"parsearch/internal/vec"
)

func TestBrowseFullRanking(t *testing.T) {
	const d, n = 4, 1000
	pts := data.Uniform(n, d, 61)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	ix, err := Open(Options{Dim: d, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	q := data.Uniform(1, d, 62)[0]

	want := make([]float64, n)
	for i, p := range pts {
		want[i] = vec.Dist(q, p)
	}
	sort.Float64s(want)

	b, err := ix.Browse(q)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		nb, ok := b.Next()
		if !ok {
			t.Fatalf("ranking ended after %d of %d", i, n)
		}
		if math.Abs(nb.Dist-want[i]) > 1e-9 {
			t.Fatalf("rank %d: dist %v, want %v", i, nb.Dist, want[i])
		}
		if seen[nb.ID] {
			t.Fatalf("id %d returned twice", nb.ID)
		}
		seen[nb.ID] = true
	}
	if _, ok := b.Next(); ok {
		t.Fatal("ranking longer than the data set")
	}
}

func TestBrowseMatchesKNNPrefix(t *testing.T) {
	const d, n, k = 6, 2000, 15
	ix := buildTestIndex(t, Options{Dim: d, Disks: 8}, n)
	q := data.Uniform(1, d, 63)[0]
	knnRes, _, err := ix.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.Browse(q)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < k; i++ {
		nb, ok := b.Next()
		if !ok {
			t.Fatal("browser exhausted early")
		}
		if nb.ID != knnRes[i].ID || math.Abs(nb.Dist-knnRes[i].Dist) > 1e-12 {
			t.Fatalf("rank %d: browser %+v vs KNN %+v", i, nb, knnRes[i])
		}
	}
}

func TestBrowseValidation(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 3, Disks: 2}, 10)
	if _, err := ix.Browse([]float64{0.5}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestBrowseCloseIdempotentAndUnlocks(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 2, Disks: 2}, 20)
	b, err := ix.Browse([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // must not panic
	if _, ok := b.Next(); ok {
		t.Error("closed browser returned a result")
	}
	// The write lock must be obtainable again.
	if _, err := ix.Insert([]float64{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestBrowseEmptyIndex(t *testing.T) {
	ix, _ := Open(Options{Dim: 2, Disks: 2})
	b, err := ix.Browse([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, ok := b.Next(); ok {
		t.Error("empty index produced a ranking entry")
	}
}
