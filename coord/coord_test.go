package coord

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsearch"
	"parsearch/client"
	"parsearch/server"
)

// cluster is an in-test multi-node deployment: one reference library
// index, m shard daemons each serving an identically-built full copy
// of the data (the steady state the catch-up bootstrap converges to),
// and a coordinator over them.
type cluster struct {
	lib    *parsearch.Index
	shards []*httptest.Server
	co     *Coordinator
}

func testPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func buildIndex(t testing.TB, pts [][]float64, dim, disks, replication int) *parsearch.Index {
	t.Helper()
	ix, err := parsearch.Open(parsearch.Options{Dim: dim, Disks: disks, Replication: replication})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	return ix
}

// newCluster builds an m-shard cluster over n points. Every shard
// runs its own engine built from the same point set — deterministic
// builds make the copies identical, modeling full-snapshot replicas.
func newCluster(t testing.TB, dim, n, disks, m, replication int) *cluster {
	t.Helper()
	pts := testPoints(n, dim, 42)
	c := &cluster{lib: buildIndex(t, pts, dim, disks, replication)}
	bases := make([]string, m)
	for i := 0; i < m; i++ {
		ix := buildIndex(t, pts, dim, disks, replication)
		srv, err := server.New(ix, server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		c.shards = append(c.shards, ts)
		bases[i] = ts.URL
	}
	co, err := New(Config{
		Shards: bases, Dim: dim, Disks: disks,
		ClientOptions: []client.Option{client.WithBackoff(time.Millisecond, 5*time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.co = co
	return c
}

// kill makes shard i unreachable: refuses new connections and severs
// in-flight ones, like a process kill.
func (c *cluster) kill(i int) {
	c.shards[i].CloseClientConnections()
	c.shards[i].Close()
}

func asJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func randQuery(dim, i int) []float64 {
	rng := rand.New(rand.NewSource(int64(9000 + i)))
	q := make([]float64, dim)
	for j := range q {
		q[j] = rng.Float64()
	}
	return q
}

// TestClusterByteIdentity is the correctness acceptance of cluster
// mode: across KNN, Range, PartialMatch, and BatchKNN, with and
// without intra-shard replication, the coordinator's merged results
// are byte-identical to the single-process library over the same data.
func TestClusterByteIdentity(t *testing.T) {
	for _, replication := range []int{0, 1} {
		c := newCluster(t, 4, 2000, 16, 3, replication)
		ctx := context.Background()

		for i := 0; i < 10; i++ {
			q := randQuery(4, i)
			k := 1 + i*3%25
			want, _, err := c.lib.KNNContext(ctx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := c.co.KNN(ctx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if asJSON(t, got) != asJSON(t, want) {
				t.Fatalf("replication=%d KNN(q%d, k=%d): cluster result differs from library", replication, i, k)
			}
			if st.Degraded || st.Rerouted {
				t.Fatalf("healthy cluster flagged degraded/rerouted: %+v", st)
			}
			if st.ShardsQueried != 3 {
				t.Fatalf("KNN queried %d shards, want 3", st.ShardsQueried)
			}
		}

		for i := 0; i < 5; i++ {
			lo, hi := float64(i)*0.08, float64(i)*0.08+0.3
			min := []float64{lo, lo, lo, lo}
			max := []float64{hi, hi, hi, hi}
			want, _, err := c.lib.RangeQueryContext(ctx, min, max)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := c.co.Range(ctx, min, max)
			if err != nil {
				t.Fatal(err)
			}
			if asJSON(t, got) != asJSON(t, want) {
				t.Fatalf("replication=%d Range(%d): cluster result differs from library", replication, i)
			}

			spec := []float64{lo + 0.1, parsearch.Wildcard, lo + 0.2, parsearch.Wildcard}
			wantPM, _, err := c.lib.PartialMatchContext(ctx, spec, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			gotPM, _, err := c.co.PartialMatch(ctx, spec, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			// Partial-match distances are NaN by design (distance to a
			// box center with wildcard dimensions), so compare
			// NaN-aware instead of through JSON.
			if len(gotPM) != len(wantPM) {
				t.Fatalf("replication=%d PartialMatch(%d): %d cluster results, %d library", replication, i, len(gotPM), len(wantPM))
			}
			for j := range wantPM {
				g, w := gotPM[j], wantPM[j]
				if g.ID != w.ID || asJSON(t, g.Point) != asJSON(t, w.Point) ||
					(g.Dist != w.Dist && !(math.IsNaN(g.Dist) && math.IsNaN(w.Dist))) {
					t.Fatalf("replication=%d PartialMatch(%d) item %d: cluster %+v, library %+v", replication, i, j, g, w)
				}
			}
		}

		queries := make([][]float64, 12)
		for i := range queries {
			queries[i] = randQuery(4, 100+i)
		}
		want, _, err := c.lib.BatchKNNContext(ctx, queries, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := c.co.BatchKNN(ctx, queries, 7)
		if err != nil {
			t.Fatal(err)
		}
		if asJSON(t, got) != asJSON(t, want) {
			t.Fatalf("replication=%d BatchKNN: cluster result differs from library", replication)
		}
		if st.ShardsQueried != 3 {
			t.Fatalf("batch queried %d shards, want 3", st.ShardsQueried)
		}
	}
}

// TestClusterRemoteBound proves the two-phase cross-network bound
// protocol actually prunes: on the 16-disk / 3-shard profile, phase 1
// regularly returns a full k, the shipped k-th distance seeds the
// phase-2 shards, and the remote-bound ledger comes back positive —
// while the results stay byte-identical (seeding is
// exactness-preserving).
func TestClusterRemoteBound(t *testing.T) {
	c := newCluster(t, 4, 3000, 16, 3, 0)
	ctx := context.Background()

	var savedTotal, boundsShipped int
	for i := 0; i < 20; i++ {
		q := randQuery(4, 200+i)
		want, _, err := c.lib.KNNContext(ctx, q, 16)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := c.co.KNN(ctx, q, 16)
		if err != nil {
			t.Fatal(err)
		}
		if asJSON(t, got) != asJSON(t, want) {
			t.Fatalf("KNN(q%d): bounded cluster result differs from library", i)
		}
		if st.RemoteBound > 0 {
			boundsShipped++
		}
		savedTotal += st.PagesSavedByRemoteBound
	}
	if boundsShipped == 0 {
		t.Error("no query shipped a phase-1 bound (20 queries, k=16, 3000 points)")
	}
	if savedTotal == 0 {
		t.Error("PagesSavedByRemoteBound = 0 across 20 queries: the shipped bound never pruned")
	}
	snap := c.co.Metrics()
	if snap.RemoteBoundTightenings < int64(boundsShipped) {
		t.Errorf("registry remote_bound_tightenings = %d, want >= %d", snap.RemoteBoundTightenings, boundsShipped)
	}
	if snap.ShardRPCs < 40 {
		t.Errorf("registry shard_rpcs = %d, want >= 40 (2 phases x 20 queries)", snap.ShardRPCs)
	}
	if snap.ShardLatencyNs.Count < snap.ShardRPCs {
		t.Errorf("shard latency histogram observed %d RPCs of %d", snap.ShardLatencyNs.Count, snap.ShardRPCs)
	}
	t.Logf("remote bound: %d/20 queries shipped a bound, %d pages saved across phase-2 shards", boundsShipped, savedTotal)
}

// TestClusterShardKillMidStorm is the failover acceptance: a query
// storm runs against a 3-shard cluster while one shard is killed.
// Every query must keep returning results byte-identical to the
// library — the dead shard's groups fail over to the next shard in
// the ring, which serves the same snapshot — and the failover must be
// visible in the accounting, never silent.
func TestClusterShardKillMidStorm(t *testing.T) {
	c := newCluster(t, 4, 2000, 16, 3, 0)
	ctx := context.Background()

	const queries = 32
	expected := make([]string, queries)
	for i := 0; i < queries; i++ {
		want, _, err := c.lib.KNNContext(ctx, randQuery(4, 300+i), 10)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = asJSON(t, want)
	}

	var (
		wg       sync.WaitGroup
		killed   sync.WaitGroup
		rerouted atomic.Int64
		mismatch atomic.Int64
		failures atomic.Int64
	)
	killed.Add(1)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				if w == 0 && i == queries/4 {
					c.kill(1)
					killed.Done()
				}
				got, st, err := c.co.KNN(ctx, randQuery(4, 300+i), 10)
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d query %d: %v", w, i, err)
					continue
				}
				if asJSON(t, got) != expected[i] {
					mismatch.Add(1)
				}
				if st.Degraded {
					t.Errorf("query flagged degraded with 2 live full-snapshot shards: %+v", st)
				}
				if st.Rerouted || st.ShardRetries > 0 {
					rerouted.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if mismatch.Load() > 0 {
		t.Errorf("%d queries returned results differing from the library during failover", mismatch.Load())
	}
	if failures.Load() > 0 {
		t.Errorf("%d queries failed despite 2 live shards", failures.Load())
	}

	// The kill must be observable: the coordinator marked the shard
	// down and re-issued its groups.
	killed.Wait()
	if _, st, err := c.co.KNN(ctx, randQuery(4, 299), 10); err != nil {
		t.Fatal(err)
	} else if !st.Rerouted {
		t.Errorf("post-kill query not flagged rerouted: %+v", st)
	}
	if c.co.Metrics().ShardRetries < 1 {
		t.Error("registry shard_retries = 0 after a mid-storm shard kill")
	}
	if h := c.co.Health(); h.Status != "rerouted" {
		t.Errorf("cluster health %q after one kill, want rerouted", h.Status)
	}

	// Degraded-never-wrong: with every shard dead the coordinator
	// refuses (ErrUnavailable) instead of fabricating an answer.
	c.kill(0)
	c.kill(2)
	if _, st, err := c.co.KNN(ctx, randQuery(4, 298), 10); !errors.Is(err, parsearch.ErrUnavailable) {
		t.Errorf("all-dead cluster: err = %v (stats %+v), want ErrUnavailable", err, st)
	} else if !st.Degraded || len(st.UnservedGroups) != 3 {
		t.Errorf("all-dead cluster stats %+v, want degraded with 3 unserved groups", st)
	}
	if h := c.co.Health(); h.Status != "degraded" {
		t.Errorf("cluster health %q with all shards dead, want degraded", h.Status)
	}
}

// TestClusterDegradedShardPropagates pins the other half of the
// degraded contract: a shard that answers but has itself lost data
// (intra-index failure beyond its replication) taints the cluster
// result as Degraded — the coordinator never launders a shard's
// partial answer into a clean one.
func TestClusterDegradedShardPropagates(t *testing.T) {
	c := newCluster(t, 4, 1500, 16, 3, 0)
	ctx := context.Background()

	// Fail a disk inside shard 2's engine. Without replication its
	// cells are unreachable, so shard 2's answers are best-effort.
	if err := failShardDisk(t, c, 2, 5); err != nil {
		t.Fatal(err)
	}
	_, st, err := c.co.KNN(ctx, randQuery(4, 400), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded {
		t.Errorf("cluster stats not degraded over a data-lossy shard: %+v", st)
	}
}

// failShardDisk reaches into the cluster helper to fail one simulated
// disk of one shard's engine. The httptest indirection has no admin
// endpoint, so the helper rebuilds the shard server around the same
// engine after mutating it.
func failShardDisk(t *testing.T, c *cluster, shard, disk int) error {
	t.Helper()
	// The shard servers were built over engines newCluster created; to
	// keep the helper simple the engines are rebuilt here with the
	// fault injected before serving.
	pts := testPoints(1500, 4, 42)
	ix := buildIndex(t, pts, 4, 16, 0)
	if err := ix.FailDisk(disk); err != nil {
		return err
	}
	srv, err := server.New(ix, server.Config{})
	if err != nil {
		return err
	}
	old := c.shards[shard]
	old.Close()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c.shards[shard] = ts
	// Point the coordinator's client at the replacement server.
	c.co.shards[shard].cl = client.New(ts.URL,
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	c.co.shards[shard].down.Store(false)
	return nil
}

// TestClusterEmptyAndRecovery covers the remaining lifecycle edges:
// an empty cluster answers ErrEmpty like the library, and CheckHealth
// brings a marked-down shard back once it answers again.
func TestClusterEmptyAndRecovery(t *testing.T) {
	ctx := context.Background()

	// Empty cluster → ErrEmpty, matching parsearch.Index on no data.
	var bases []string
	for i := 0; i < 2; i++ {
		ix, err := parsearch.Open(parsearch.Options{Dim: 3, Disks: 4})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(ix, server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		bases = append(bases, ts.URL)
	}
	co, err := New(Config{Shards: bases, Dim: 3, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := co.KNN(ctx, []float64{0.1, 0.2, 0.3}, 5); !errors.Is(err, parsearch.ErrEmpty) {
		t.Errorf("empty cluster KNN err = %v, want ErrEmpty", err)
	}

	// Recovery: a shard marked down mid-query rejoins after a
	// successful health probe.
	co.markDown(0)
	if h := co.Health(); h.Status != "rerouted" {
		t.Fatalf("health %q with one shard down, want rerouted", h.Status)
	}
	if live := co.CheckHealth(ctx); live != 2 {
		t.Fatalf("CheckHealth counted %d live shards, want 2", live)
	}
	if h := co.Health(); h.Status != "ok" {
		t.Errorf("health %q after recovery probe, want ok", h.Status)
	}
}

// TestCoordServerEndToEnd drives the coordinator's HTTP front with the
// ordinary client package: results match the library, internal fields
// are rejected at the door, healthz/statusz/varz report cluster state,
// and shutdown drains.
func TestCoordServerEndToEnd(t *testing.T) {
	c := newCluster(t, 4, 1500, 16, 3, 0)
	front, err := NewServer(c.co, ServerConfig{ExpvarName: "parsearch_coord_e2e_test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	q := randQuery(4, 500)
	want, _, err := c.lib.KNNContext(ctx, q, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.KNN(ctx, q, 9)
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, got) != asJSON(t, want) {
		t.Error("served cluster KNN differs from library")
	}

	// Internal protocol fields are rejected at the cluster entrance.
	for _, body := range []string{
		`{"query":[0.1,0.2,0.3,0.4],"k":3,"bound":0.5}`,
		`{"query":[0.1,0.2,0.3,0.4],"k":3,"shard":{"of":3,"groups":[0]}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/knn", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("coordinator accepted internal field (body %s): status %d", body, resp.StatusCode)
		}
	}

	// healthz probes the shards and reports cluster state.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz %d %q, want 200 ok", resp.StatusCode, h.Status)
	}

	// statusz carries topology and the cluster metrics snapshot.
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cluster struct {
			Groups int `json:"groups"`
			Shards []struct {
				Down bool `json:"down"`
			} `json:"shards"`
		} `json:"cluster"`
		Metrics struct {
			ShardRPCs int64 `json:"shard_rpcs"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Cluster.Groups != 3 || len(doc.Cluster.Shards) != 3 {
		t.Errorf("statusz topology %+v", doc.Cluster)
	}
	if doc.Metrics.ShardRPCs < 1 {
		t.Errorf("statusz shard_rpcs = %d, want >= 1", doc.Metrics.ShardRPCs)
	}

	// Drain: new queries bounce with 503/draining.
	if err := front.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.KNN(ctx, q, 3); !errors.Is(err, parsearch.ErrUnavailable) {
		t.Errorf("post-drain query err = %v, want ErrUnavailable", err)
	}
}
