package coord

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"parsearch"
	"parsearch/internal/admit"
	"parsearch/internal/wire"
)

// ServerConfig configures the coordinator's HTTP front. The knobs
// mirror the shard daemon's server.Config; zero values select the
// same defaults.
type ServerConfig struct {
	// MaxInFlight bounds the queries fanned out concurrently; MaxQueue
	// the requests waiting for a slot (defaults 64 and 256).
	MaxInFlight, MaxQueue int
	// DefaultTimeout applies when a request brings no deadline
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds a request body (default 8 MiB);
	// MaxBatchRequest the queries of one batch (default 1024).
	MaxBodyBytes    int64
	MaxBatchRequest int
	// ExpvarName, when non-empty, publishes the coordinator registry
	// under this expvar name (rendered on /varz).
	ExpvarName string
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchRequest <= 0 {
		c.MaxBatchRequest = 1024
	}
	return c
}

// Server is the coordinator's HTTP front: the same /v1 query surface
// as a shard daemon (so package client works against a cluster
// unchanged), plus healthz/varz/statusz, with admission control and
// graceful drain at the cluster entrance. Create with NewServer,
// mount Handler(), stop with Shutdown.
type Server struct {
	co   *Coordinator
	cfg  ServerConfig
	adm  *admit.Admission
	gate *admit.Gate
	mux  *http.ServeMux
}

// NewServer returns the HTTP front of a coordinator.
func NewServer(co *Coordinator, cfg ServerConfig) (*Server, error) {
	if co == nil {
		return nil, fmt.Errorf("coord: nil coordinator")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		co:   co,
		cfg:  cfg,
		adm:  admit.New(cfg.MaxInFlight, cfg.MaxQueue),
		gate: &admit.Gate{},
	}
	if cfg.ExpvarName != "" && expvar.Get(cfg.ExpvarName) == nil {
		expvar.Publish(cfg.ExpvarName, expvar.Func(func() any { return co.Metrics() }))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/knn", s.handleKNN)
	mux.HandleFunc("POST /v1/range", s.handleRange)
	mux.HandleFunc("POST /v1/partialmatch", s.handlePartialMatch)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /varz", expvar.Handler())
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the coordinator front: new requests are rejected
// with 503, queued requests are woken and rejected, and Shutdown
// blocks until every in-flight fan-out has completed or ctx expires.
// Idempotent; the HTTP listener is the caller's to close afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.gate.Close() {
		s.adm.CloseDrain()
	}
	return s.gate.Wait(ctx)
}

func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if _, ok := ctx.Deadline(); !ok {
		return context.WithTimeout(ctx, s.cfg.DefaultTimeout)
	}
	return ctx, func() {}
}

// enter runs admission control; on failure the rejection is written
// and the caller must return, on success it must defer exit().
func (s *Server) enter(ctx context.Context, w http.ResponseWriter) bool {
	if err := s.adm.Acquire(ctx); err != nil {
		writeAdmissionError(w, err)
		return false
	}
	if err := s.gate.Enter(); err != nil {
		s.adm.Release()
		writeAdmissionError(w, err)
		return false
	}
	return true
}

func (s *Server) exit() {
	s.gate.Exit()
	s.adm.Release()
}

func writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admit.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, wire.CodeQueueFull, err)
	case errors.Is(err, admit.ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, err)
	default:
		writeError(w, http.StatusGatewayTimeout, wire.CodeDeadline, err)
	}
}

// writeQueryError maps a coordinator error to its status code,
// mirroring the shard daemon so client error mapping keeps working.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, parsearch.ErrEmpty):
		writeError(w, http.StatusNotFound, wire.CodeEmpty, err)
	case errors.Is(err, parsearch.ErrUnavailable):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, wire.CodeUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, wire.CodeDeadline, err)
	default:
		writeError(w, http.StatusInternalServerError, wire.CodeInternal, err)
	}
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Errorf("coord: reading body: %w", err))
		return nil, false
	}
	return body, true
}

// rejectClusterFields refuses client-supplied shard/bound fields: the
// coordinator owns the partition and the bound protocol, and honoring
// a caller's restriction would silently return partial answers.
func rejectClusterFields(w http.ResponseWriter, bound *float64, shard *wire.ShardSpec) bool {
	if bound != nil || shard != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Errorf("coord: bound/shard are coordinator-internal fields"))
		return false
	}
	return true
}

func wireNeighbors(ns []parsearch.Neighbor) []wire.Neighbor {
	if len(ns) == 0 {
		return nil
	}
	out := make([]wire.Neighbor, len(ns))
	for i, n := range ns {
		out[i] = wire.Neighbor{ID: n.ID, Point: n.Point, Dist: n.Dist}
	}
	return out
}

func rawStats(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return b
}

func (s *Server) approxOf(epsilon, recallTarget *float64) parsearch.Approx {
	var a parsearch.Approx
	if epsilon != nil {
		a.Epsilon = *epsilon
	}
	if recallTarget != nil {
		a.RecallTarget = *recallTarget
	}
	return a
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeKNN(body, s.co.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	if !rejectClusterFields(w, req.Bound, req.Shard) {
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	ns, stats, err := s.co.KNNApprox(ctx, req.Query, req.K, s.approxOf(req.Epsilon, req.RecallTarget))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, wire.QueryResponse{Neighbors: wireNeighbors(ns), Stats: rawStats(stats)})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeRange(body, s.co.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	if !rejectClusterFields(w, nil, req.Shard) {
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	ns, stats, err := s.co.Range(ctx, req.Min, req.Max)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, wire.QueryResponse{Neighbors: wireNeighbors(ns), Stats: rawStats(stats)})
}

func (s *Server) handlePartialMatch(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodePartialMatch(body, s.co.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	if !rejectClusterFields(w, nil, req.Shard) {
		return
	}
	spec := make([]float64, len(req.Spec))
	for i, v := range req.Spec {
		if v == nil {
			spec[i] = math.NaN()
		} else {
			spec[i] = *v
		}
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	ns, stats, err := s.co.PartialMatch(ctx, spec, req.Eps)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, wire.QueryResponse{Neighbors: wireNeighbors(ns), Stats: rawStats(stats)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeBatch(body, s.co.Dim(), s.cfg.MaxBatchRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	if !rejectClusterFields(w, req.Bound, req.Shard) {
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if !s.enter(ctx, w) {
		return
	}
	defer s.exit()

	results, stats, err := s.co.BatchKNNApprox(ctx, req.Queries, req.K, s.approxOf(req.Epsilon, req.RecallTarget))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := make([][]wire.Neighbor, len(results))
	for i, ns := range results {
		out[i] = wireNeighbors(ns)
	}
	writeJSON(w, wire.BatchResponse{Results: out, Stats: rawStats(stats)})
}

// handleHealthz reports the cluster state: 200 for ok/rerouted, 503
// when some group has no live shard. Each GET re-probes the shards, so
// a load balancer's health checks double as the recovery path.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	s.co.CheckHealth(ctx)
	h := s.co.Health()
	h.Draining = s.gate.IsDraining()
	status := http.StatusOK
	if h.Status == "degraded" {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(h)
}

// handleStatusz dumps the cluster topology, per-shard liveness, the
// serving knobs, and the coordinator metrics snapshot.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	type shardStatus struct {
		Base  string `json:"base"`
		Group int    `json:"group"`
		Down  bool   `json:"down"`
	}
	shards := make([]shardStatus, len(s.co.shards))
	for i, sh := range s.co.shards {
		shards[i] = shardStatus{Base: sh.base, Group: i, Down: sh.down.Load()}
	}
	inflight, queued := s.adm.InFlight()
	writeJSON(w, map[string]any{
		"cluster": map[string]any{
			"dim":    s.co.Dim(),
			"disks":  s.co.Disks(),
			"groups": s.co.Groups(),
			"shards": shards,
		},
		"serving": map[string]any{
			"max_in_flight": s.cfg.MaxInFlight,
			"max_queue":     s.cfg.MaxQueue,
			"in_flight":     inflight,
			"queued":        queued,
			"draining":      s.gate.IsDraining(),
		},
		"metrics": s.co.Metrics(),
	})
}
