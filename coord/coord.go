// Package coord implements the multi-node scatter-gather coordinator
// of the parsearch cluster mode: it partitions the declustered disk
// set of one logical index into m shard groups (disk d → group d mod
// m), fans each query out to the parsearchd shard daemons serving
// those groups, and merges the per-group answers into results that are
// byte-identical to the single-process library.
//
// Every shard daemon serves the full snapshot (bootstrapped with the
// existing catch-up protocol; see client.CatchupDir) but restricts
// each query to its groups via the wire shard spec, so global IDs are
// preserved and any shard can stand in for any group. The coordinator
// exploits that for failover: when a shard dies, its groups are
// re-issued to the next live shard in the ring, and only a group no
// live shard can serve degrades the query — results are provably
// degraded, never silently wrong.
//
// k-NN queries run the two-phase cross-network bound protocol: phase 1
// queries the shard serving the query point's home group (the group
// likeliest to hold near neighbors); if it returns a full k results,
// the k-th distance ships to the remaining shards as the wire "bound"
// field, seeding their cooperative pruning bound. Seeding is
// exactness-preserving on the shard side (see parsearch.Approx.Bound),
// so the merged results never depend on the bound — only the page
// count does, surfaced as Stats.PagesSavedByRemoteBound.
package coord

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parsearch"
	"parsearch/client"
	"parsearch/internal/metrics"
	"parsearch/internal/wire"
)

// Config configures a Coordinator.
type Config struct {
	// Shards is the base URL of each shard daemon; shard i primarily
	// serves group i of the disk → disk mod len(Shards) partition.
	// Required, at least one.
	Shards []string
	// Dim and Disks mirror the served index's geometry. Required;
	// Disks must be >= len(Shards) so every group is non-empty.
	Dim, Disks int
	// Kind is the declustering strategy of the served index; it drives
	// the home-group routing of the two-phase bound protocol. Optional
	// — a mismatch only degrades pruning, never correctness.
	Kind parsearch.Kind
	// ClientOptions configure the per-shard HTTP clients (timeouts,
	// retries, backoff).
	ClientOptions []client.Option
}

func (c Config) validate() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("coord: no shards configured")
	}
	if c.Dim < 1 {
		return fmt.Errorf("coord: dimension %d, want >= 1", c.Dim)
	}
	if c.Disks < len(c.Shards) {
		return fmt.Errorf("coord: %d disks across %d shards leaves empty groups", c.Disks, len(c.Shards))
	}
	return nil
}

// Stats is the coordinator's per-query accounting, the cluster-level
// analogue of parsearch.QueryStats.
type Stats struct {
	// ShardsQueried counts the shard RPCs that contributed results.
	ShardsQueried int `json:"shards_queried"`
	// ShardRetries counts failover re-issues: RPCs repeated against
	// another shard after their first target failed mid-query.
	ShardRetries int `json:"shard_retries"`
	// RemoteBound is the k-th distance phase 1 shipped to the
	// remaining shards (0 = no bound was available).
	RemoteBound float64 `json:"remote_bound"`
	// PagesSavedByRemoteBound sums the page reads the shipped bound
	// pruned across phase-2 shards — the cross-network half of the
	// cooperative pruning ledger.
	PagesSavedByRemoteBound int `json:"pages_saved_by_remote_bound"`
	// TotalPages sums the simulated page reads across all shards.
	TotalPages int `json:"total_pages"`
	// Rerouted reports that at least one group was served by a
	// non-primary shard (cluster-level failover).
	Rerouted bool `json:"rerouted"`
	// Degraded reports that results may be incomplete: some group had
	// no live shard (see UnservedGroups), or a shard answered with its
	// own intra-index degradation.
	Degraded bool `json:"degraded"`
	// UnservedGroups lists the groups no live shard could serve.
	UnservedGroups []int `json:"unserved_groups,omitempty"`
}

// Coordinator fans queries out to a fixed set of shard daemons. Create
// with New; safe for concurrent use.
type Coordinator struct {
	cfg    Config
	router *parsearch.Index // empty index: deterministic home-disk routing only
	shards []*shardState
	reg    *metrics.Registry // per-disk slots hold per-shard data
}

// shardState tracks one shard daemon's client and liveness.
type shardState struct {
	base string
	cl   *client.Client
	down atomic.Bool
}

// New returns a coordinator over the configured shard daemons. It
// performs no I/O; the first health view assumes every shard live.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	router, err := parsearch.Open(parsearch.Options{Dim: cfg.Dim, Disks: cfg.Disks, Kind: cfg.Kind})
	if err != nil {
		return nil, fmt.Errorf("coord: building router: %w", err)
	}
	co := &Coordinator{
		cfg:    cfg,
		router: router,
		reg:    metrics.NewRegistry(len(cfg.Shards)),
	}
	for _, base := range cfg.Shards {
		co.shards = append(co.shards, &shardState{base: base, cl: client.New(base, cfg.ClientOptions...)})
	}
	return co, nil
}

// Groups returns the number of shard groups (= configured shards).
func (c *Coordinator) Groups() int { return len(c.shards) }

// Dim returns the cluster's vector dimensionality.
func (c *Coordinator) Dim() int { return c.cfg.Dim }

// Disks returns the declustered disk count of the served index.
func (c *Coordinator) Disks() int { return c.cfg.Disks }

// Metrics snapshots the coordinator registry. The per-disk slots hold
// per-shard page totals; shard_rpcs / shard_retries /
// remote_bound_tightenings and the shard_latency_ns histogram are the
// cluster-specific counters.
func (c *Coordinator) Metrics() metrics.Snapshot { return c.reg.Snapshot() }

// owner returns the shard currently serving group g: g itself when
// live, else the next live shard in the ring. -1 when every shard is
// down.
func (c *Coordinator) owner(g int) int {
	m := len(c.shards)
	for i := 0; i < m; i++ {
		s := (g + i) % m
		if !c.shards[s].down.Load() {
			return s
		}
	}
	return -1
}

// markDown records a shard failure observed mid-query. Recovery is
// CheckHealth's job — queries only ever demote.
func (c *Coordinator) markDown(s int) { c.shards[s].down.Store(true) }

// CheckHealth probes every shard's /healthz once, in parallel, and
// updates the liveness view: a shard that answers with a non-degraded
// status is (re)admitted, one that fails the probe or reports itself
// degraded is taken out of rotation. Returns the number of live
// shards.
func (c *Coordinator) CheckHealth(ctx context.Context) int {
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			h, err := sh.cl.Health(ctx)
			// A shard whose own index is degraded cannot serve exact
			// group-restricted results; the full-snapshot partner can.
			sh.down.Store(err != nil || h.Status == "degraded")
		}(sh)
	}
	wg.Wait()
	live := 0
	for _, sh := range c.shards {
		if !sh.down.Load() {
			live++
		}
	}
	return live
}

// WatchHealth re-probes the shards every interval until ctx ends —
// the recovery path that brings restarted shards back into rotation.
func (c *Coordinator) WatchHealth(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.CheckHealth(ctx)
		}
	}
}

// Health summarizes the cluster state in the shard daemons' healthz
// vocabulary: "ok" (every group on its primary shard), "rerouted"
// (failover active, results still exact), "degraded" (some group has
// no live shard).
func (c *Coordinator) Health() wire.Health {
	h := wire.Health{Status: "ok", Disks: c.cfg.Disks}
	for g := range c.shards {
		switch owner := c.owner(g); {
		case owner < 0:
			return wire.Health{Status: "degraded", Disks: c.cfg.Disks}
		case owner != g:
			h.Status = "rerouted"
		}
	}
	return h
}

// rpcResult is one successful shard RPC's contribution.
type rpcResult struct {
	shard  int
	groups []int
	ns     []parsearch.Neighbor
	batch  [][]parsearch.Neighbor
	stats  parsearch.QueryStats
	bstats parsearch.BatchStats
	empty  bool // the shard reported an empty index
}

// shardCall runs one operation against one shard restricted to a group
// set. Implementations fill the matching rpcResult fields.
type shardCall func(ctx context.Context, cl *client.Client, spec wire.ShardSpec, out *rpcResult) error

// scatter issues do for every group in groups against the shards
// currently serving them, failing a dead shard's groups over to the
// next live shard. It returns the successful per-shard results, the
// groups no live shard could serve, and the number of failover
// re-issues. A non-transient error (bad request, shard-internal
// failure, the caller's own deadline) aborts the query instead of
// failing over — those would return the same answer anywhere.
func (c *Coordinator) scatter(ctx context.Context, groups []int, do shardCall) (results []rpcResult, unserved []int, retries int, err error) {
	pending := append([]int(nil), groups...)
	// Each round either serves every pending group or observes at
	// least one new dead shard, so m+1 rounds always suffice.
	for round := 0; len(pending) > 0 && round <= len(c.shards); round++ {
		byShard := make(map[int][]int)
		var dead []int
		for _, g := range pending {
			s := c.owner(g)
			if s < 0 {
				dead = append(dead, g)
				continue
			}
			byShard[s] = append(byShard[s], g)
		}
		if round > 0 {
			retries += len(byShard)
			c.reg.ShardRetries.Add(int64(len(byShard)))
		}

		var (
			mu     sync.Mutex
			failed []int
			wg     sync.WaitGroup
			fatal  error
		)
		for s, gs := range byShard {
			sort.Ints(gs)
			wg.Add(1)
			go func(s int, gs []int) {
				defer wg.Done()
				spec := wire.ShardSpec{Of: len(c.shards), Groups: gs}
				out := rpcResult{shard: s, groups: gs}
				c.reg.ShardRPCs.Inc()
				start := time.Now()
				callErr := do(ctx, c.shards[s].cl, spec, &out)
				c.reg.ShardLatencyNs.Observe(time.Since(start).Nanoseconds())
				if errors.Is(callErr, parsearch.ErrEmpty) {
					// An empty shard contributes zero results; the
					// cluster-level "index is empty" verdict is the
					// caller's once every group has answered.
					out.empty, callErr = true, nil
				}
				mu.Lock()
				defer mu.Unlock()
				switch {
				case callErr == nil:
					results = append(results, out)
				case c.transient(ctx, callErr):
					c.markDown(s)
					failed = append(failed, gs...)
				default:
					if fatal == nil {
						fatal = callErr
					}
				}
			}(s, gs)
		}
		wg.Wait()
		if fatal != nil {
			return nil, nil, retries, fatal
		}
		pending = append(dead, failed...)
		if len(dead) > 0 && len(failed) == 0 {
			// No shard died this round, so the dead groups' ownership
			// cannot change in another: they are unserved.
			break
		}
	}
	sort.Ints(pending)
	return results, pending, retries, nil
}

// transient reports whether a shard RPC failure warrants failover:
// transport-level errors and unavailability (the shard died, drains,
// or lost disks) do — another shard holds the same snapshot; the
// caller's own deadline and request-shaped errors do not.
func (c *Coordinator) transient(ctx context.Context, err error) bool {
	if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status == 503 || ae.Status == 429
	}
	return true // transport-level: connection refused, reset, ...
}

// allGroups returns [0, m).
func (c *Coordinator) allGroups() []int {
	gs := make([]int, len(c.shards))
	for i := range gs {
		gs[i] = i
	}
	return gs
}

// fold accumulates one RPC's accounting into the query stats.
func (st *Stats) fold(r rpcResult) {
	st.ShardsQueried++
	st.PagesSavedByRemoteBound += r.stats.PagesSavedByRemoteBound + r.bstats.PagesSavedByRemoteBound
	st.TotalPages += r.stats.TotalPages + r.bstats.TotalPages
	st.Degraded = st.Degraded || r.stats.Degraded || r.bstats.Degraded
	for _, g := range r.groups {
		if r.shard != g {
			st.Rerouted = true
		}
	}
}

// finish applies the scatter outcome shared by every query kind and
// updates the cluster registry. It returns ErrUnavailable when no
// group could be served at all.
func (c *Coordinator) finish(st *Stats, results []rpcResult, unserved []int, retries int) error {
	st.ShardRetries = retries
	st.UnservedGroups = unserved
	if len(unserved) > 0 {
		st.Degraded = true
	}
	for _, r := range results {
		c.reg.PagesPerDisk.Add(r.shard, int64(r.stats.TotalPages+r.bstats.TotalPages))
	}
	if st.Degraded {
		c.reg.DegradedQueries.Inc()
	}
	if len(results) == 0 {
		c.reg.QueryErrors.Inc()
		return parsearch.ErrUnavailable
	}
	empties := 0
	for _, r := range results {
		if r.empty {
			empties++
		}
	}
	if empties == len(results) && len(unserved) == 0 {
		return parsearch.ErrEmpty
	}
	return nil
}

// mergeTopK merges per-shard k-best lists into the global k-best. The
// per-group result sets are disjoint (each point lives on exactly one
// disk, each disk in exactly one group) and every list is ordered by
// (distance, ID), so sorting the concatenation and truncating to k
// reproduces the library's merge byte-for-byte.
func mergeTopK(results []rpcResult, k int) []parsearch.Neighbor {
	var all []parsearch.Neighbor
	for _, r := range results {
		all = append(all, r.ns...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	if len(all) == 0 {
		return nil
	}
	return all
}

// mergeByID merges disjoint per-shard box/partial-match results, which
// the engine orders by ID.
func mergeByID(results []rpcResult) []parsearch.Neighbor {
	var all []parsearch.Neighbor
	for _, r := range results {
		all = append(all, r.ns...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if len(all) == 0 {
		return nil
	}
	return all
}

// KNN finds the k nearest neighbors of q across the cluster.
func (c *Coordinator) KNN(ctx context.Context, q []float64, k int) ([]parsearch.Neighbor, Stats, error) {
	return c.KNNApprox(ctx, q, k, parsearch.Approx{})
}

// KNNApprox is KNN with explicit approximate-tier knobs, forwarded to
// every shard. The epsilon guarantee composes across the merge: each
// group's candidates are within (1+ε) of that group's exact answer, so
// the merged top-k is within (1+ε) of the exact global answer.
func (c *Coordinator) KNNApprox(ctx context.Context, q []float64, k int, a parsearch.Approx) ([]parsearch.Neighbor, Stats, error) {
	var st Stats
	if len(q) != c.cfg.Dim {
		c.reg.QueryErrors.Inc()
		return nil, st, fmt.Errorf("coord: query dimension %d, want %d", len(q), c.cfg.Dim)
	}
	if k < 1 {
		c.reg.QueryErrors.Inc()
		return nil, st, fmt.Errorf("coord: k = %d, want >= 1", k)
	}
	c.reg.QueriesKNN.Inc()

	doKNN := func(bound *float64) shardCall {
		return func(ctx context.Context, cl *client.Client, spec wire.ShardSpec, out *rpcResult) error {
			req := wire.KNNRequest{Query: q, K: k, Bound: bound, Shard: &spec}
			if a != (parsearch.Approx{}) {
				req.Epsilon, req.RecallTarget = &a.Epsilon, &a.RecallTarget
			}
			ns, qs, err := cl.KNNRaw(ctx, req)
			out.ns, out.stats = ns, qs
			return err
		}
	}

	// Phase 1: the shard serving the query's home group searches
	// unbounded. Its groups are whatever that shard currently owns, so
	// failover never queries the same shard twice.
	home, err := c.router.HomeDisk(q)
	if err != nil {
		c.reg.QueryErrors.Inc()
		return nil, st, err
	}
	hg := home % len(c.shards)
	var (
		results  []rpcResult
		unserved []int
		retries  int
	)
	phase2 := c.allGroups()
	if owner := c.owner(hg); owner >= 0 {
		var p1groups []int
		phase2 = phase2[:0]
		for _, g := range c.allGroups() {
			if c.owner(g) == owner {
				p1groups = append(p1groups, g)
			} else {
				phase2 = append(phase2, g)
			}
		}
		r1, u1, ret1, err := c.scatter(ctx, p1groups, doKNN(nil))
		if err != nil {
			c.reg.QueryErrors.Inc()
			return nil, st, err
		}
		results, unserved, retries = r1, u1, ret1
	}

	// Phase 2: the remaining shards search under the k-th distance
	// phase 1 achieved, if it found a full k.
	var bound *float64
	if len(phase2) > 0 {
		if ns := mergeTopK(results, k); len(ns) == k {
			b := ns[k-1].Dist
			bound = &b
			st.RemoteBound = b
			c.reg.RemoteBoundTightenings.Inc()
		}
		r2, u2, ret2, err := c.scatter(ctx, phase2, doKNN(bound))
		if err != nil {
			c.reg.QueryErrors.Inc()
			return nil, st, err
		}
		results = append(results, r2...)
		unserved = append(unserved, u2...)
		retries += ret2
	}

	for _, r := range results {
		st.fold(r)
	}
	sort.Ints(unserved)
	if err := c.finish(&st, results, unserved, retries); err != nil {
		return nil, st, err
	}
	return mergeTopK(results, k), st, nil
}

// Range finds all points inside the box [min, max] across the cluster.
func (c *Coordinator) Range(ctx context.Context, min, max []float64) ([]parsearch.Neighbor, Stats, error) {
	var st Stats
	c.reg.QueriesRange.Inc()
	do := func(ctx context.Context, cl *client.Client, spec wire.ShardSpec, out *rpcResult) error {
		ns, qs, err := cl.RangeRaw(ctx, wire.RangeRequest{Min: min, Max: max, Shard: &spec})
		out.ns, out.stats = ns, qs
		return err
	}
	results, unserved, retries, err := c.scatter(ctx, c.allGroups(), do)
	if err != nil {
		c.reg.QueryErrors.Inc()
		return nil, st, err
	}
	for _, r := range results {
		st.fold(r)
	}
	if err := c.finish(&st, results, unserved, retries); err != nil {
		return nil, st, err
	}
	return mergeByID(results), st, nil
}

// PartialMatch runs a partial-match query across the cluster; spec
// uses parsearch.Wildcard for unspecified dimensions.
func (c *Coordinator) PartialMatch(ctx context.Context, spec []float64, eps float64) ([]parsearch.Neighbor, Stats, error) {
	var st Stats
	c.reg.QueriesRange.Inc()
	do := func(ctx context.Context, cl *client.Client, sp wire.ShardSpec, out *rpcResult) error {
		ns, qs, err := cl.PartialMatchRaw(ctx, wire.PartialMatchRequest{Spec: wirePartialSpec(spec), Eps: eps, Shard: &sp})
		out.ns, out.stats = ns, qs
		return err
	}
	results, unserved, retries, err := c.scatter(ctx, c.allGroups(), do)
	if err != nil {
		c.reg.QueryErrors.Inc()
		return nil, st, err
	}
	for _, r := range results {
		st.fold(r)
	}
	if err := c.finish(&st, results, unserved, retries); err != nil {
		return nil, st, err
	}
	return mergeByID(results), st, nil
}

// wirePartialSpec converts a Wildcard-marked spec to the wire's
// null-marked form.
func wirePartialSpec(spec []float64) []*float64 {
	ws := make([]*float64, len(spec))
	for i := range spec {
		if spec[i] == spec[i] { // not NaN
			v := spec[i]
			ws[i] = &v
		}
	}
	return ws
}

// BatchKNN answers many k-NN queries in one cluster round: the whole
// batch fans out to every shard with its group restriction
// (single-phase — per-item home routing would shatter the batch), and
// each item's per-shard k-bests merge independently.
func (c *Coordinator) BatchKNN(ctx context.Context, queries [][]float64, k int) ([][]parsearch.Neighbor, Stats, error) {
	return c.BatchKNNApprox(ctx, queries, k, parsearch.Approx{})
}

// BatchKNNApprox is BatchKNN with explicit approximate-tier knobs.
func (c *Coordinator) BatchKNNApprox(ctx context.Context, queries [][]float64, k int, a parsearch.Approx) ([][]parsearch.Neighbor, Stats, error) {
	var st Stats
	if len(queries) == 0 {
		c.reg.QueryErrors.Inc()
		return nil, st, fmt.Errorf("coord: empty batch")
	}
	c.reg.QueriesBatch.Inc()
	c.reg.BatchQueries.Add(int64(len(queries)))
	do := func(ctx context.Context, cl *client.Client, spec wire.ShardSpec, out *rpcResult) error {
		req := wire.BatchRequest{Queries: queries, K: k, Shard: &spec}
		if a != (parsearch.Approx{}) {
			req.Epsilon, req.RecallTarget = &a.Epsilon, &a.RecallTarget
		}
		batch, bs, err := cl.BatchKNNRaw(ctx, req)
		out.batch, out.bstats = batch, bs
		return err
	}
	results, unserved, retries, err := c.scatter(ctx, c.allGroups(), do)
	if err != nil {
		c.reg.QueryErrors.Inc()
		return nil, st, err
	}
	for _, r := range results {
		st.fold(r)
	}
	if err := c.finish(&st, results, unserved, retries); err != nil {
		return nil, st, err
	}

	out := make([][]parsearch.Neighbor, len(queries))
	for i := range queries {
		item := make([]rpcResult, 0, len(results))
		for _, r := range results {
			if i < len(r.batch) {
				item = append(item, rpcResult{ns: r.batch[i]})
			}
		}
		out[i] = mergeTopK(item, k)
	}
	return out, st, nil
}
