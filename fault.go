package parsearch

import (
	"errors"
	"fmt"
	"time"

	"parsearch/internal/disk"
)

// This file is the fault-tolerance layer of the index: replicated
// declustering (every storage cell keeps a second copy on a chained
// replica disk), per-query failure routing (reads on failed disks are
// transparently served by the replica), and degraded-mode semantics
// (when a page has no live copy, queries return best-effort results
// flagged Degraded instead of erroring). See README "Failure semantics".

// ErrDiskFailed is wrapped by query errors when a page read hit a disk
// that failed mid-query (a disk failed *before* the query starts is
// routed around instead). Classify with errors.Is.
var ErrDiskFailed = disk.ErrDiskFailed

// ErrTransient is wrapped by query errors when a read kept failing
// transiently after the retry budget of the fault model was exhausted.
var ErrTransient = disk.ErrTransient

// ErrUnavailable is returned when every disk holding a live copy of the
// data is failed, so not even a best-effort answer exists.
var ErrUnavailable = errors.New("parsearch: no live copy of the data is reachable")

// FaultModel configures fault injection on the simulated disks: a
// per-read transient error probability (absorbed by a bounded retry
// with exponential backoff, charged as service time) and latency
// spikes. All randomness is drawn from per-disk RNGs seeded from Seed,
// so runs reproduce. The zero model disables fault injection.
type FaultModel struct {
	// TransientProb is the per-read probability of a transient error.
	TransientProb float64
	// MaxRetries bounds the retries of one page read; a read still
	// failing after MaxRetries retries surfaces as ErrTransient.
	MaxRetries int
	// RetryBackoff is the simulated wait charged before the first
	// retry, doubling on every further attempt.
	RetryBackoff time.Duration
	// SpikeProb is the per-read probability of a latency spike.
	SpikeProb float64
	// SpikeLatency is the extra service time charged per spike.
	SpikeLatency time.Duration
	// Seed seeds the per-disk RNGs (disk d uses Seed+d).
	Seed int64
}

// diskFaults converts the public model to the disk simulator's.
func (m FaultModel) diskFaults() disk.FaultModel {
	return disk.FaultModel{
		TransientProb: m.TransientProb,
		MaxRetries:    m.MaxRetries,
		RetryBackoff:  m.RetryBackoff,
		SpikeProb:     m.SpikeProb,
		SpikeLatency:  m.SpikeLatency,
		Seed:          m.Seed,
	}
}

// SetFaults installs (or, with the zero model, removes) the disk fault
// model at runtime. It takes effect for queries that start after the
// call. The model can also be set at Open time via Options.Faults.
func (ix *Index) SetFaults(m FaultModel) error {
	return ix.array.SetFaults(m.diskFaults())
}

// replicaOf returns the disk holding the replica of disk d's cells:
// the next disk modulo n (chained declustering). The shift guarantees
// primary != replica for n >= 2 and keeps the replica load perfectly
// balanced — every disk hosts exactly one neighbor's copy, so any
// single failure adds at most one disk's worth of load to one survivor.
func replicaOf(d, n int) int { return (d + 1) % n }

// ReplicaDisk returns the disk holding the replica of disk d's cells,
// or -1 when the index was opened without replication (or d is out of
// range).
func (ix *Index) ReplicaDisk(d int) int {
	if ix.opts.Replication == 0 || d < 0 || d >= ix.opts.Disks {
		return -1
	}
	return replicaOf(d, ix.opts.Disks)
}

// route describes how one logical shard is served during a query: the
// tree to search and the physical disk charged for its page reads. sh
// is nil (and disk -1) when neither the primary nor the replica disk is
// live — the shard's data is unreachable. masked marks a disk a
// ShardSpec excluded from the query: it is neither searched nor
// accounted (another process shard serves it), unlike an unreachable
// disk, whose absence is charged as Unreachable/Degraded.
type route struct {
	sh       *shard
	disk     int
	rerouted bool
	masked   bool
}

// plan snapshots the failure flags once and routes every logical shard
// to a live copy: the primary disk when it is up, the chained replica
// when only the primary is down, unreachable when both are. A query
// plans once and uses the same routing for its search and its I/O
// accounting, so a single query sees one consistent failure state;
// failures flipped mid-query surface as ReadBatch errors, never as
// silently wrong results. degraded reports whether any non-empty shard
// is unreachable (its points are invisible to the query); the query
// refines this into QueryStats.Degraded, which stays false when the
// unreachable pages provably could not have changed the answer.
//
// mask, when non-nil, is a ShardSpec's disk selection: excluded disks
// get a masked route — skipped entirely, with no degraded accounting
// (they are another process shard's responsibility, not lost data).
func (ix *Index) plan(st *state, mask []bool) (routes []route, degraded bool) {
	n := len(st.shards)
	routes = make([]route, n)
	for d := 0; d < n; d++ {
		if mask != nil && !mask[d] {
			routes[d] = route{disk: -1, masked: true}
			continue
		}
		if !ix.array.Failed(d) {
			routes[d] = route{sh: st.shards[d], disk: d}
			continue
		}
		if st.replicas != nil {
			if r := replicaOf(d, n); !ix.array.Failed(r) {
				routes[d] = route{sh: st.replicas[r], disk: r, rerouted: true}
				continue
			}
		}
		routes[d] = route{disk: -1}
		sh := st.shards[d]
		sh.mu.RLock()
		if sh.tree.Len() > 0 {
			degraded = true
		}
		sh.mu.RUnlock()
	}
	return routes, degraded
}

// healthyPlan routes every shard to its own disk regardless of the
// failure flags — the accounting path of capacity planning
// (ServiceDemands), which models the healthy system.
func healthyPlan(st *state) []route {
	routes := make([]route, len(st.shards))
	for d := range routes {
		routes[d] = route{sh: st.shards[d], disk: d}
	}
	return routes
}

// VerifyReplication checks the replica layout invariants — the
// replication counterpart of VerifyDeclustering:
//
//   - every disk's replica is a different disk,
//   - replica placement is balanced: every disk hosts exactly one
//     primary's copies,
//   - every replica tree holds exactly as many vectors as its primary.
//
// It returns the violations formatted for display (nil when clean) and
// errors when the index was opened without replication.
func (ix *Index) VerifyReplication() ([]string, error) {
	if ix.opts.Replication == 0 {
		return nil, fmt.Errorf("parsearch: index opened without replication")
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()

	n := len(st.shards)
	var out []string
	hosts := make([]int, n) // how many primaries replicate onto each disk
	for d := 0; d < n; d++ {
		r := replicaOf(d, n)
		if r == d {
			out = append(out, fmt.Sprintf("disk %d replicates onto itself", d))
		}
		hosts[r]++
	}
	for h, c := range hosts {
		if c != 1 {
			out = append(out, fmt.Sprintf("disk %d hosts replicas of %d primaries, want 1", h, c))
		}
	}
	if st.replicas == nil {
		out = append(out, "replica trees missing")
		return out, nil
	}
	for h, rsh := range st.replicas {
		src := (h - 1 + n) % n
		psh := st.shards[src]
		psh.mu.RLock()
		pn := psh.tree.Len()
		psh.mu.RUnlock()
		rsh.mu.RLock()
		rn := rsh.tree.Len()
		rsh.mu.RUnlock()
		if pn != rn {
			out = append(out, fmt.Sprintf("replica of disk %d on disk %d holds %d vectors, primary holds %d",
				src, h, rn, pn))
		}
	}
	return out, nil
}
