package parsearch

// Race-hardened stress and conformance tests: N reader goroutines issue
// KNN/RangeQuery/BatchKNN/Browse against M writer goroutines running
// Insert/Delete/FailDisk/HealDisk plus a maintenance goroutine running
// Reorganize/Save. Workloads are seeded, the final state is verified
// against a linear scan, and CheckIntegrity cross-checks the X-trees and
// the storage-cell accounting. The whole file is meant to run under
// `go test -race`.

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"parsearch/internal/data"
	"parsearch/internal/disk"
	"parsearch/internal/vec"
)

// stressIters scales the per-goroutine operation counts down in -short
// mode (CI runs the race build with -short).
func stressIters(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// tolerableQueryErr reports whether a query error is an expected outcome
// of the concurrent workload: an index transiently emptied by deletions,
// a read hitting an injected disk failure (mid-query flip), data whose
// every copy is on a failed disk, or an exhausted transient-fault retry
// budget. Anything else — and any silent wrong result — is a bug.
func tolerableQueryErr(err error) bool {
	return err == nil || errors.Is(err, ErrEmpty) || errors.Is(err, disk.ErrDiskFailed) ||
		errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTransient)
}

// writerLog records the mutations one writer performed, for the final
// ground-truth reconstruction.
type writerLog struct {
	inserted map[int][]float64
	deleted  map[int]bool
}

// TestStressMixedWorkload is the main stress test: seeded mixed
// read/write traffic over one index, followed by exact conformance
// checks of the final state.
func TestStressMixedWorkload(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"tree-pages", Options{Dim: 6, Disks: 4}},
		{"bucket-pages-baseline", Options{Dim: 5, Disks: 3, CostModel: BucketPages, Baseline: true}},
		{"quantile-recursive", Options{Dim: 4, Disks: 4, QuantileSplits: true, Recursive: true}},
		{"replicated", Options{Dim: 5, Disks: 4, Replication: 1}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			runMixedWorkload(t, cfg.opts)
		})
	}
}

func runMixedWorkload(t *testing.T, opts Options) {
	const (
		initial = 400
		writers = 3
		readers = 4
	)
	writerOps := stressIters(400, 120)

	// The whole stress run is traced: the counting tracer receives the
	// concurrent per-disk span events of every reader, so the race
	// detector covers the tracing layer under full mixed load.
	var traceEvents atomic.Int64
	opts.Tracer = TracerFunc(func(TraceEvent) { traceEvents.Add(1) })
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(initial, opts.Dim, 42)
	raw := make([][]float64, initial)
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readerWG, writerWG sync.WaitGroup

	// Readers: seeded query traffic of every kind until the writers are
	// done. Errors are only tolerable if they stem from an injected
	// disk failure or a transiently empty index.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randPoint(rng, opts.Dim)
				switch rng.Intn(6) {
				case 0:
					if _, _, err := ix.KNN(q, 1+rng.Intn(5)); !tolerableQueryErr(err) {
						t.Errorf("KNN: %v", err)
					}
				case 1:
					lo, hi := randBox(rng, opts.Dim)
					if _, _, err := ix.RangeQuery(lo, hi); !tolerableQueryErr(err) {
						t.Errorf("RangeQuery: %v", err)
					}
				case 2:
					batch := [][]float64{q, randPoint(rng, opts.Dim), randPoint(rng, opts.Dim)}
					if _, _, err := ix.BatchKNN(batch, 3); !tolerableQueryErr(err) {
						t.Errorf("BatchKNN: %v", err)
					}
				case 3:
					b, err := ix.Browse(q)
					if err != nil {
						t.Errorf("Browse: %v", err)
						continue
					}
					for i := 0; i < 5; i++ {
						if _, ok := b.Next(); !ok {
							break
						}
					}
					b.Close()
				case 4:
					ix.Len()
					ix.DiskLoads()
					ix.CellLoads()
				case 5:
					if _, _, err := ix.NN(q); !tolerableQueryErr(err) {
						t.Errorf("NN: %v", err)
					}
				}
			}
		}(r)
	}

	// Writers: each owns the initial IDs congruent to its index mod
	// `writers` (so no two goroutines delete the same ID) plus
	// everything it inserts itself.
	logs := make([]*writerLog, writers)
	for w := 0; w < writers; w++ {
		logs[w] = &writerLog{inserted: make(map[int][]float64), deleted: make(map[int]bool)}
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			lg := logs[w]
			var ownInitial []int
			for id := w; id < initial; id += writers {
				ownInitial = append(ownInitial, id)
			}
			var ownInserted []int
			for op := 0; op < writerOps; op++ {
				switch v := rng.Intn(100); {
				case v < 55:
					p := randPoint(rng, opts.Dim)
					id, err := ix.Insert(p)
					if err != nil {
						t.Errorf("Insert: %v", err)
						return
					}
					lg.inserted[id] = p
					ownInserted = append(ownInserted, id)
				case v < 75 && len(ownInserted) > 0:
					i := rng.Intn(len(ownInserted))
					id := ownInserted[i]
					ownInserted = append(ownInserted[:i], ownInserted[i+1:]...)
					if err := ix.Delete(id); err != nil {
						t.Errorf("Delete(%d): %v", id, err)
						return
					}
					lg.deleted[id] = true
				case v < 85 && len(ownInitial) > 0:
					i := rng.Intn(len(ownInitial))
					id := ownInitial[i]
					ownInitial = append(ownInitial[:i], ownInitial[i+1:]...)
					if err := ix.Delete(id); err != nil {
						t.Errorf("Delete(initial %d): %v", id, err)
						return
					}
					lg.deleted[id] = true
				case v < 92:
					d := rng.Intn(opts.Disks)
					ix.FailDisk(d)
					ix.HealDisk(d)
				default:
					ix.Len()
				}
			}
		}(w)
	}

	// Maintenance: concurrent reorganizations and snapshots.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		n := stressIters(8, 3)
		for i := 0; i < n; i++ {
			if err := ix.Reorganize(); err != nil {
				t.Errorf("Reorganize: %v", err)
				return
			}
			ix.NeedsReorganization()
			if err := ix.Save(io.Discard); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
			if err := ix.CheckIntegrity(); err != nil {
				t.Errorf("CheckIntegrity mid-flight: %v", err)
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	for d := 0; d < opts.Disks; d++ {
		ix.HealDisk(d)
	}

	// Reconstruct the expected live set from the initial data and the
	// writers' logs.
	expected := make(map[int][]float64)
	for id, p := range raw {
		expected[id] = p
	}
	for _, lg := range logs {
		for id, p := range lg.inserted {
			expected[id] = p
		}
		for id := range lg.deleted {
			delete(expected, id)
		}
	}

	verifyFinalState(t, ix, expected, opts)

	if traceEvents.Load() == 0 {
		t.Error("tracer saw no events across the stress run")
	}
	// The registry absorbed the workload without tearing: per-disk page
	// totals sum to the cumulative count.
	s := ix.Metrics()
	var perDisk int64
	for _, v := range s.PagesPerDisk {
		perDisk += v
	}
	if perDisk != s.PagesRead {
		t.Errorf("per-disk pages sum to %d, PagesRead is %d", perDisk, s.PagesRead)
	}
}

// verifyFinalState checks the quiesced index exactly against the
// expected id→point map: structural integrity, counts, loads, k-NN
// versus a linear scan, and range queries versus a direct box filter.
func verifyFinalState(t *testing.T, ix *Index, expected map[int][]float64, opts Options) {
	t.Helper()
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
	if got := ix.Len(); got != len(expected) {
		t.Fatalf("Len = %d, want %d", got, len(expected))
	}
	diskLoads := ix.DiskLoads()
	cellLoads := ix.CellLoads()
	if !reflect.DeepEqual(diskLoads, cellLoads) {
		t.Fatalf("DiskLoads %v != CellLoads %v", diskLoads, cellLoads)
	}
	sum := 0
	for _, l := range diskLoads {
		sum += l
	}
	if sum != len(expected) {
		t.Fatalf("disk loads sum to %d, want %d", sum, len(expected))
	}

	if len(expected) == 0 {
		return
	}
	m, err := opts.Metric.vecMetric()
	if err != nil {
		m, _ = Euclidean.vecMetric()
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 10; i++ {
		q := randPoint(rng, opts.Dim)
		k := 1 + rng.Intn(8)
		got, _, err := ix.KNN(q, k)
		if err != nil {
			t.Fatalf("final KNN: %v", err)
		}
		want := linearScanKNN(expected, q, k, m)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
				t.Fatalf("query %d neighbor %d: got (id %d, dist %v), want (id %d, dist %v)",
					i, j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
			}
		}

		lo, hi := randBox(rng, opts.Dim)
		res, _, err := ix.RangeQuery(lo, hi)
		if err != nil {
			t.Fatalf("final RangeQuery: %v", err)
		}
		var gotIDs []int
		for _, n := range res {
			gotIDs = append(gotIDs, n.ID)
		}
		var wantIDs []int
		for id, p := range expected {
			if inBox(p, lo, hi) {
				wantIDs = append(wantIDs, id)
			}
		}
		sort.Ints(wantIDs)
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Fatalf("range query %d: got ids %v, want %v", i, gotIDs, wantIDs)
		}
	}
}

type scanHit struct {
	id   int
	dist float64
}

// linearScanKNN is the ground truth: distances to every live point,
// sorted by (dist, id), truncated to k — the same semantics as the tree
// algorithms.
func linearScanKNN(points map[int][]float64, q []float64, k int, m vec.Metric) []scanHit {
	hits := make([]scanHit, 0, len(points))
	for id, p := range points {
		hits = append(hits, scanHit{id: id, dist: m.FromRank(m.RankDist(q, p))})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].dist != hits[j].dist {
			return hits[i].dist < hits[j].dist
		}
		return hits[i].id < hits[j].id
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func inBox(p, lo, hi []float64) bool {
	for i := range p {
		if p[i] < lo[i] || p[i] > hi[i] {
			return false
		}
	}
	return true
}

func randPoint(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

func randBox(rng *rand.Rand, d int) (lo, hi []float64) {
	lo = make([]float64, d)
	hi = make([]float64, d)
	for i := range lo {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return lo, hi
}

// TestConcurrentKNNIdenticalToSequential verifies the acceptance
// criterion that concurrent KNN calls return byte-identical results to
// the single-threaded run on the same seed: exact k-NN semantics are
// preserved under read parallelism.
func TestConcurrentKNNIdenticalToSequential(t *testing.T) {
	const d, n, k, queries = 8, 1500, 9, 40
	ix, err := Open(Options{Dim: d, Disks: 5})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(n, d, 42)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	qs := data.Uniform(queries, d, 43)

	// Sequential reference.
	want := make([][]Neighbor, queries)
	for i, q := range qs {
		res, _, err := ix.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	// The same queries from many goroutines, repeatedly.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < stressIters(20, 6); rep++ {
				i := (g + rep) % queries
				res, _, err := ix.KNN(qs[i], k)
				if err != nil {
					t.Errorf("concurrent KNN: %v", err)
					return
				}
				if !reflect.DeepEqual(res, want[i]) {
					t.Errorf("query %d: concurrent result differs from sequential", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReorganizeConcurrentInsertsNotLost is the regression test for the
// torn-rebuild race: Reorganize used to drop the lock between copying
// the point table and rebuilding, so a concurrent Insert in that window
// vanished. Every insert must survive any number of reorganizations.
func TestReorganizeConcurrentInsertsNotLost(t *testing.T) {
	const d, writers = 4, 4
	perWriter := stressIters(150, 50)
	ix, err := Open(Options{Dim: d, Disks: 3, QuantileSplits: true})
	if err != nil {
		t.Fatal(err)
	}
	initial := data.Uniform(100, d, 1)
	raw := make([][]float64, len(initial))
	for i, p := range initial {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				if _, err := ix.Insert(randPoint(rng, d)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			goto drained
		default:
		}
		if err := ix.Reorganize(); err != nil {
			t.Fatalf("Reorganize: %v", err)
		}
	}
drained:
	// One final reorganization over the quiesced index.
	if err := ix.Reorganize(); err != nil {
		t.Fatal(err)
	}
	want := len(initial) + writers*perWriter
	if got := ix.Len(); got != want {
		t.Fatalf("Len = %d after concurrent reorganize, want %d (inserts lost)", got, want)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestNeedsReorganizationDuringInserts is the regression test for the
// unsynchronized quantile-estimator access: the adaptive splitter is
// updated by Insert while NeedsReorganization reads its counters and
// queries read the split values. Must be clean under -race.
func TestNeedsReorganizationDuringInserts(t *testing.T) {
	const d = 5
	ix, err := Open(Options{Dim: d, Disks: 4, QuantileSplits: true})
	if err != nil {
		t.Fatal(err)
	}
	seed := data.Uniform(200, d, 3)
	raw := make([][]float64, len(seed))
	for i, p := range seed {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var inserter, pollers sync.WaitGroup
	inserter.Add(1)
	go func() {
		defer inserter.Done()
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < stressIters(500, 150); i++ {
			if _, err := ix.Insert(randPoint(rng, d)); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		pollers.Add(1)
		go func(g int) {
			defer pollers.Done()
			rng := rand.New(rand.NewSource(int64(5 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix.NeedsReorganization()
				if _, _, err := ix.KNN(randPoint(rng, d), 3); !tolerableQueryErr(err) {
					t.Errorf("KNN: %v", err)
					return
				}
			}
		}(g)
	}
	inserter.Wait()
	close(stop)
	pollers.Wait()
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestFailHealDuringQueries is the regression test for the disk
// fail/heal flags being read by query goroutines: flags are atomic, a
// query either succeeds or reports the failure, and a healed array
// serves queries again.
func TestFailHealDuringQueries(t *testing.T) {
	const d = 6
	ix, err := Open(Options{Dim: d, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(800, d, 11)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var flipper, readers sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		rng := rand.New(rand.NewSource(12))
		for {
			select {
			case <-stop:
				return
			default:
			}
			di := rng.Intn(4)
			ix.FailDisk(di)
			ix.DiskFailed(di)
			ix.HealDisk(di)
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(20 + g)))
			for i := 0; i < stressIters(300, 80); i++ {
				_, _, err := ix.KNN(randPoint(rng, d), 4)
				if err != nil && !errors.Is(err, disk.ErrDiskFailed) {
					t.Errorf("KNN error other than disk failure: %v", err)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	flipper.Wait()

	for di := 0; di < 4; di++ {
		ix.HealDisk(di)
	}
	if _, _, err := ix.KNN(make([]float64, d), 3); err != nil {
		t.Fatalf("healed index still failing: %v", err)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// checkFailureOutcome classifies one query outcome under concurrent
// failure flips: a tolerable classified error, or honest results —
// every neighbor a real point at its true distance, in sorted order,
// and, when not flagged Degraded, exactly the linear-scan ground truth.
// Anything else is the silent-wrong-answer bug this test hunts.
func checkFailureOutcome(t *testing.T, expected map[int][]float64, q []float64, k int,
	got []Neighbor, degraded bool, err error, m vec.Metric) {
	t.Helper()
	if err != nil {
		if !tolerableQueryErr(err) {
			t.Errorf("unclassified query error: %v", err)
		}
		return
	}
	prev := scanHit{id: -1, dist: -1}
	for _, nb := range got {
		p, ok := expected[nb.ID]
		if !ok {
			t.Errorf("result id %d is not a live point", nb.ID)
			return
		}
		if want := m.FromRank(m.RankDist(q, p)); nb.Dist != want {
			t.Errorf("result id %d at dist %v, true dist %v", nb.ID, nb.Dist, want)
			return
		}
		if nb.Dist < prev.dist || (nb.Dist == prev.dist && nb.ID <= prev.id) {
			t.Errorf("results out of order: (id %d, %v) after (id %d, %v)",
				nb.ID, nb.Dist, prev.id, prev.dist)
			return
		}
		prev = scanHit{id: nb.ID, dist: nb.Dist}
	}
	if degraded {
		return // best-effort results, honestly flagged
	}
	want := linearScanKNN(expected, q, k, m)
	if len(got) != len(want) {
		t.Errorf("non-degraded query returned %d neighbors, want %d", len(got), len(want))
		return
	}
	for j := range got {
		if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
			t.Errorf("non-degraded query wrong at %d: got (id %d, %v), want (id %d, %v)",
				j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
			return
		}
	}
}

// TestFailureFlipsNeverSilentlyWrong flips disk failures (including
// chained primary+replica pairs) while seeded KNN/BatchKNN traffic runs
// on a replicated index. Every query must either match the linear-scan
// ground truth exactly, carry the Degraded flag, or report a classified
// error — a plausible-but-wrong result without the flag fails the test.
// Meant for `go test -race`.
func TestFailureFlipsNeverSilentlyWrong(t *testing.T) {
	const d, n, disks = 5, 900, 6
	ix, err := Open(Options{Dim: d, Disks: disks, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(n, d, 61)
	raw := make([][]float64, n)
	expected := make(map[int][]float64, n)
	for i, p := range pts {
		raw[i] = p
		expected[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var flipper, readers sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		rng := rand.New(rand.NewSource(62))
		for {
			select {
			case <-stop:
				return
			default:
			}
			di := rng.Intn(disks)
			ix.FailDisk(di)
			if rng.Intn(2) == 0 {
				// Kill the chained replica too: the shard's data has no
				// live copy, forcing the degraded path.
				ix.FailDisk(ix.ReplicaDisk(di))
			}
			ix.HealDisk((di + 1) % disks)
			ix.HealDisk(di)
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(70 + g)))
			for i := 0; i < stressIters(250, 80); i++ {
				q := randPoint(rng, d)
				k := 1 + rng.Intn(6)
				if rng.Intn(3) == 0 {
					batch := [][]float64{q, randPoint(rng, d)}
					res, stats, err := ix.BatchKNN(batch, k)
					if err != nil {
						checkFailureOutcome(t, expected, q, k, nil, false, err, m)
						continue
					}
					for j, qr := range batch {
						checkFailureOutcome(t, expected, qr, k, res[j], stats.Degraded, nil, m)
					}
				} else {
					res, stats, err := ix.KNN(q, k)
					checkFailureOutcome(t, expected, q, k, res, stats.Degraded, err, m)
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	flipper.Wait()

	for di := 0; di < disks; di++ {
		ix.HealDisk(di)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	verifyFinalState(t, ix, expected, Options{Dim: d, Disks: disks})
}

// TestSharedBoundStressConcurrent hammers the cooperative-pruning path
// under the race detector: concurrent KNN/NN traffic (shared bound
// active, per-query) races Insert/Delete writers and a FailDisk /
// HealDisk flipper, with a counting tracer attached so the
// bound_tightened events of every disk goroutine flow through user
// code concurrently. The final quiesced index must still answer
// exactly, and the bound must have been observably active.
func TestSharedBoundStressConcurrent(t *testing.T) {
	const d, n, disks = 6, 700, 5
	var events, tightened atomic.Int64
	opts := Options{Dim: d, Disks: disks, Replication: 1,
		Tracer: TracerFunc(func(ev TraceEvent) {
			events.Add(1)
			if ev.Stage == StageBoundTightened {
				tightened.Add(1)
			}
		})}
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(n, d, 81)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var flipper, readers, writers sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		rng := rand.New(rand.NewSource(82))
		for {
			select {
			case <-stop:
				return
			default:
			}
			di := rng.Intn(disks)
			ix.FailDisk(di)
			ix.HealDisk(di)
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(90 + g)))
			for i := 0; i < stressIters(250, 80); i++ {
				q := randPoint(rng, d)
				if rng.Intn(4) == 0 {
					if _, _, err := ix.NN(q); !tolerableQueryErr(err) {
						t.Errorf("NN: %v", err)
						return
					}
					continue
				}
				_, stats, err := ix.KNN(q, 1+rng.Intn(6))
				if !tolerableQueryErr(err) {
					t.Errorf("KNN: %v", err)
					return
				}
				if err == nil && stats.SearchPages <= 0 {
					t.Errorf("successful KNN visited %d search pages", stats.SearchPages)
					return
				}
			}
		}(g)
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(95 + w)))
			var own []int
			for i := 0; i < stressIters(200, 60); i++ {
				if len(own) > 0 && rng.Intn(3) == 0 {
					j := rng.Intn(len(own))
					id := own[j]
					own = append(own[:j], own[j+1:]...)
					if err := ix.Delete(id); err != nil {
						t.Errorf("Delete(%d): %v", id, err)
						return
					}
					continue
				}
				id, err := ix.Insert(randPoint(rng, d))
				if err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				own = append(own, id)
			}
		}(w)
	}
	writers.Wait()
	readers.Wait()
	close(stop)
	flipper.Wait()
	for di := 0; di < disks; di++ {
		ix.HealDisk(di)
	}

	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Error("tracer saw no events")
	}
	if tightened.Load() == 0 {
		t.Error("no bound_tightened events across the stress run")
	}
	m := ix.Metrics()
	if m.SearchPages <= 0 || m.BoundTightenings <= 0 {
		t.Errorf("registry search pages %d, tightenings %d", m.SearchPages, m.BoundTightenings)
	}
	if m.PagesSavedByBound < 0 {
		t.Errorf("registry saved pages %d", m.PagesSavedByBound)
	}

	// Quiesced, the index must agree with the independent path again.
	q := randPoint(rand.New(rand.NewSource(83)), d)
	res, stats, err := ix.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || stats.SearchPages+stats.PagesSavedByBound <= 0 {
		t.Fatalf("quiesced KNN: %d results, stats %+v", len(res), stats)
	}
}

// TestBrowserConcurrentWithReaders: an open Browser must not block
// queries (only writers), must emit globally sorted results, and writers
// must proceed once it closes.
func TestBrowserConcurrentWithReaders(t *testing.T) {
	const d = 4
	ix, err := Open(Options{Dim: d, Disks: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(300, d, 21)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}

	q := make([]float64, d)
	b, err := ix.Browse(q)
	if err != nil {
		t.Fatal(err)
	}

	// Readers keep working while the browser is open (no writer is
	// pending yet, so shard read locks are granted immediately).
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(30 + g)))
			for i := 0; i < 50; i++ {
				if _, _, err := ix.KNN(randPoint(rng, d), 2); !tolerableQueryErr(err) {
					t.Errorf("KNN during browse: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// A writer started mid-browse blocks until the browser closes.
	inserted := make(chan error, 1)
	go func() {
		_, err := ix.Insert(make([]float64, d))
		inserted <- err
	}()

	prev := -1.0
	count := 0
	for {
		n, ok := b.Next()
		if !ok {
			break
		}
		if n.Dist < prev {
			t.Fatalf("browser emitted out of order: %v after %v", n.Dist, prev)
		}
		prev = n.Dist
		count++
	}
	if count != len(pts) {
		t.Fatalf("browser returned %d results, want %d", count, len(pts))
	}
	b.Close()
	if err := <-inserted; err != nil {
		t.Fatalf("insert after browse: %v", err)
	}
	if got := ix.Len(); got != len(pts)+1 {
		t.Fatalf("Len = %d, want %d", got, len(pts)+1)
	}
}

// TestConcurrentSaveConsistency: snapshots taken during writes must each
// be internally consistent — they load cleanly and pass integrity
// checks, holding some prefix of the mutation history.
func TestConcurrentSaveConsistency(t *testing.T) {
	const d = 4
	ix, err := Open(Options{Dim: d, Disks: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(200, d, 31)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}

	inserts := stressIters(200, 60)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(32))
		for i := 0; i < inserts; i++ {
			if _, err := ix.Insert(randPoint(rng, d)); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()

	var snaps []*bytes.Buffer
	for {
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		snaps = append(snaps, &buf)
		select {
		case <-done:
			goto verify
		default:
		}
	}
verify:
	for i, buf := range snaps {
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("snapshot %d does not load: %v", i, err)
		}
		if err := loaded.CheckIntegrity(); err != nil {
			t.Fatalf("snapshot %d integrity: %v", i, err)
		}
		if n := loaded.Len(); n < len(pts) || n > len(pts)+inserts {
			t.Fatalf("snapshot %d holds %d vectors, expected within [%d, %d]",
				i, n, len(pts), len(pts)+inserts)
		}
	}
}
